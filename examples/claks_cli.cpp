// Copyright 2026 The claks Authors.
//
// Command-line driver: run keyword queries against a built-in dataset or a
// database directory (catalog.txt + CSVs, as written by SaveDatabase).
//
//   claks_cli --dataset=paper --query="Smith XML"
//   claks_cli --dataset=movies --query="grace noir" --ranker=ambiguity
//   claks_cli --db=/path/to/dir --query="..." --method=mtjnt --tmax=4
//
// Flags:
//   --dataset=paper|company|full|bibliography|movies   built-in data
//   --db=DIR            load a persisted database instead
//   --query=TEXT        keywords (required)
//   --method=enumerate|stream|mtjnt|discover|banks     (default enumerate)
//   --ranker=rdb-length|er-length|close-first|loose-penalty|
//            instance-close|combined|ambiguity|more-context
//   --depth=N           max FK edges for enumerate/stream (default 4)
//   --tmax=N            max tuples for mtjnt/discover (default 5)
//   --top=N             result cap (default 10)
//   --explain           print a natural-language reading per hit
//   --sql               print a SQL statement per hit
//   --stats             print instance statistics and exit
//   --save=DIR          persist the loaded dataset and exit
//
// Concurrent service mode (drives service/search_service.h instead of a
// bare engine):
//   --threads=N         serve through a SearchService with N workers
//   --queries=A;B;C     batch of queries (';'-separated; overrides --query)
//   --repeat=N          submit the batch N times (default 1) — repeats are
//                       result-cache hits; per-run QPS and cache counters
//                       are reported at the end

#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <map>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/engine.h"
#include "core/explain.h"
#include "core/sql.h"
#include "datasets/bibliography.h"
#include "datasets/company_full.h"
#include "datasets/company_gen.h"
#include "datasets/company_paper.h"
#include "datasets/movies.h"
#include "relational/catalog_io.h"
#include "service/search_service.h"

namespace {

struct Flags {
  std::string dataset = "paper";
  std::string db_dir;
  std::string query;
  std::string method = "enumerate";
  std::string ranker = "close-first";
  size_t depth = 4;
  size_t tmax = 5;
  size_t top = 10;
  bool explain = false;
  bool sql = false;
  bool stats = false;
  std::string save_dir;
  size_t threads = 0;  // > 0: drive a SearchService instead of the engine
  std::string queries;  // ';'-separated batch for service mode
  size_t repeat = 1;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0) {
    *out = arg + prefix.size();
    return true;
  }
  return false;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "dataset", &flags->dataset)) continue;
    if (ParseFlag(argv[i], "db", &flags->db_dir)) continue;
    if (ParseFlag(argv[i], "query", &flags->query)) continue;
    if (ParseFlag(argv[i], "method", &flags->method)) continue;
    if (ParseFlag(argv[i], "ranker", &flags->ranker)) continue;
    if (ParseFlag(argv[i], "save", &flags->save_dir)) continue;
    if (ParseFlag(argv[i], "depth", &value)) {
      flags->depth = std::stoul(value);
      continue;
    }
    if (ParseFlag(argv[i], "tmax", &value)) {
      flags->tmax = std::stoul(value);
      continue;
    }
    if (ParseFlag(argv[i], "top", &value)) {
      flags->top = std::stoul(value);
      continue;
    }
    if (ParseFlag(argv[i], "queries", &flags->queries)) continue;
    if (ParseFlag(argv[i], "threads", &value)) {
      flags->threads = std::stoul(value);
      continue;
    }
    if (ParseFlag(argv[i], "repeat", &value)) {
      flags->repeat = std::stoul(value);
      continue;
    }
    if (std::strcmp(argv[i], "--explain") == 0) {
      flags->explain = true;
      continue;
    }
    if (std::strcmp(argv[i], "--sql") == 0) {
      flags->sql = true;
      continue;
    }
    if (std::strcmp(argv[i], "--stats") == 0) {
      flags->stats = true;
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
    return false;
  }
  return true;
}

// Batch-of-queries mode over the concurrent service: submits every query
// (x repeat) through a SearchService worker pool, prints each distinct
// query's result once, then a throughput + cache-counter summary.
int RunServiceMode(const Flags& flags, std::unique_ptr<claks::Database> db,
                   claks::ERSchema er_schema,
                   claks::ErRelationalMapping mapping, bool have_mapping,
                   const claks::SearchOptions& options) {
  std::vector<std::string> queries;
  if (!flags.queries.empty()) {
    for (std::string& query : claks::Split(flags.queries, ';')) {
      if (!query.empty()) queries.push_back(std::move(query));
    }
  } else if (!flags.query.empty()) {
    queries.push_back(flags.query);
  }
  if (queries.empty()) {
    std::fprintf(stderr, "--query or --queries is required\n");
    return 2;
  }
  size_t repeat = flags.repeat == 0 ? 1 : flags.repeat;

  claks::ServiceOptions service_options;
  service_options.num_threads = flags.threads;
  auto service =
      have_mapping
          ? claks::SearchService::Create(std::move(db),
                                         std::move(er_schema),
                                         std::move(mapping),
                                         service_options)
          : claks::SearchService::Create(std::move(db), service_options);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }

  auto start = std::chrono::steady_clock::now();
  std::vector<std::future<claks::Result<claks::SearchResult>>> futures;
  futures.reserve(queries.size() * repeat);
  for (size_t r = 0; r < repeat; ++r) {
    for (const std::string& query : queries) {
      futures.push_back((*service)->Submit(query, options));
    }
  }

  const claks::Database& snapshot_db = *(*service)->snapshot()->db;
  int failures = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    auto result = futures[i].get();
    if (!result.ok()) {
      std::fprintf(stderr, "search '%s': %s\n",
                   queries[i % queries.size()].c_str(),
                   result.status().ToString().c_str());
      ++failures;
      continue;
    }
    if (i < queries.size()) {  // print each distinct query once
      std::printf("%s", result->ToString(snapshot_db, flags.top).c_str());
      if (flags.explain || flags.sql) {
        const claks::KeywordSearchEngine& engine =
            *(*service)->snapshot()->engine;
        size_t rank = 1;
        for (const claks::SearchHit& hit : result->hits) {
          if (!hit.connection.has_value()) continue;
          if (flags.explain) {
            auto text = claks::ExplainConnection(*hit.connection,
                                                 snapshot_db,
                                                 engine.er_schema(),
                                                 engine.mapping());
            if (text.ok()) {
              std::printf("  #%zu reads: %s\n", rank, text->c_str());
            }
          }
          if (flags.sql) {
            auto sql = claks::ConnectionToSql(*hit.connection, snapshot_db);
            if (sql.ok()) {
              std::printf("  #%zu sql: %s\n", rank, sql->c_str());
            }
          }
          ++rank;
        }
      }
    }
  }
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();

  claks::ServiceStats stats = (*service)->stats();
  std::printf(
      "service: %zu queries on %zu thread(s) in %.1fms (%.1f qps) | "
      "cache hits %llu misses %llu evictions %llu | snapshot v%llu\n",
      futures.size(), flags.threads, wall_ms,
      wall_ms > 0.0 ? 1000.0 * static_cast<double>(futures.size()) / wall_ms
                    : 0.0,
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_misses),
      static_cast<unsigned long long>(stats.cache_evictions),
      static_cast<unsigned long long>(stats.snapshot_version));
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  // Acquire the database (+ conceptual schema when built-in).
  std::unique_ptr<claks::Database> owned_db;
  claks::ERSchema er_schema;
  claks::ErRelationalMapping mapping;
  bool have_mapping = false;

  if (!flags.db_dir.empty()) {
    auto loaded = claks::LoadDatabase(flags.db_dir);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    owned_db = std::move(loaded).ValueOrDie();
  } else if (flags.dataset == "paper") {
    auto dataset = claks::BuildCompanyPaperDataset();
    if (!dataset.ok()) return 1;
    owned_db = std::move(dataset->db);
    er_schema = std::move(dataset->er_schema);
    mapping = std::move(dataset->mapping);
    have_mapping = true;
  } else {
    claks::Result<claks::GeneratedDataset> dataset =
        flags.dataset == "company"
            ? claks::GenerateCompanyDataset({})
            : flags.dataset == "full"
                  ? claks::GenerateCompanyFullDataset({})
                  : flags.dataset == "bibliography"
                        ? claks::GenerateBibliographyDataset({})
                        : flags.dataset == "movies"
                              ? claks::GenerateMoviesDataset({})
                              : claks::Status::InvalidArgument(
                                    "unknown --dataset '" + flags.dataset +
                                    "'");
    if (!dataset.ok()) {
      std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
      return 1;
    }
    owned_db = std::move(dataset->db);
    er_schema = std::move(dataset->er_schema);
    mapping = std::move(dataset->mapping);
    have_mapping = true;
  }

  if (!flags.save_dir.empty()) {
    auto saved = claks::SaveDatabase(*owned_db, flags.save_dir);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("saved %zu tuples to %s\n", owned_db->TotalRows(),
                flags.save_dir.c_str());
    return 0;
  }

  claks::SearchOptions options;
  options.max_rdb_edges = flags.depth;
  options.tmax = flags.tmax;
  options.top_k = flags.top;
  const std::map<std::string, claks::SearchMethod> kMethods = {
      {"enumerate", claks::SearchMethod::kEnumerate},
      {"mtjnt", claks::SearchMethod::kMtjnt},
      {"discover", claks::SearchMethod::kDiscover},
      {"banks", claks::SearchMethod::kBanks},
      {"stream", claks::SearchMethod::kStream}};
  const std::map<std::string, claks::RankerKind> kRankers = {
      {"rdb-length", claks::RankerKind::kRdbLength},
      {"er-length", claks::RankerKind::kErLength},
      {"close-first", claks::RankerKind::kCloseFirst},
      {"loose-penalty", claks::RankerKind::kLoosePenalty},
      {"instance-close", claks::RankerKind::kInstanceClose},
      {"combined", claks::RankerKind::kCombined},
      {"ambiguity", claks::RankerKind::kAmbiguity},
      {"more-context", claks::RankerKind::kMoreContext}};
  auto method = kMethods.find(flags.method);
  auto ranker = kRankers.find(flags.ranker);
  if (method == kMethods.end() || ranker == kRankers.end()) {
    std::fprintf(stderr, "unknown --method or --ranker\n");
    return 2;
  }
  options.method = method->second;
  options.ranker = ranker->second;

  if (flags.threads > 0 && !flags.stats) {
    // Concurrent service mode: the service takes ownership of the data.
    return RunServiceMode(flags, std::move(owned_db), std::move(er_schema),
                          std::move(mapping), have_mapping, options);
  }

  auto engine = have_mapping
                    ? claks::KeywordSearchEngine::Create(
                          owned_db.get(), std::move(er_schema),
                          std::move(mapping))
                    : claks::KeywordSearchEngine::Create(owned_db.get());
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  if (flags.stats) {
    std::printf("%s", (*engine)->er_schema().ToString().c_str());
    std::printf("%s", (*engine)->statistics().ToString().c_str());
    return 0;
  }
  if (flags.query.empty()) {
    std::fprintf(stderr, "--query is required (or use --stats/--save)\n");
    return 2;
  }

  auto result = (*engine)->Search(flags.query, options);
  if (!result.ok()) {
    std::fprintf(stderr, "search: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", result->ToString(*owned_db, flags.top).c_str());

  if (flags.explain || flags.sql) {
    size_t rank = 1;
    for (const claks::SearchHit& hit : result->hits) {
      if (!hit.connection.has_value()) continue;
      if (flags.explain) {
        auto text = claks::ExplainConnection(
            *hit.connection, *owned_db, (*engine)->er_schema(),
            (*engine)->mapping());
        if (text.ok()) std::printf("  #%zu reads: %s\n", rank, text->c_str());
      }
      if (flags.sql) {
        auto sql = claks::ConnectionToSql(*hit.connection, *owned_db);
        if (sql.ok()) std::printf("  #%zu sql: %s\n", rank, sql->c_str());
      }
      ++rank;
    }
  }
  return 0;
}
