// Copyright 2026 The claks Authors.
//
// Explores the movies dataset: a wider conceptual schema (two N:M and two
// 1:N relationships) with a searchable relationship attribute (ROLE on
// ACTS_IN). Demonstrates reverse engineering the conceptual schema from the
// catalog alone, close/loose verdicts on a person-to-genre query, and the
// full storage lifecycle: the generated database is exported to CSV,
// bulk-ingested back, serialized to an engine snapshot (src/storage/),
// mmap-loaded, and the same queries run against the loaded engine — the
// smoke test fails unless the loaded results render identically.

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/engine.h"
#include "datasets/movies.h"
#include "relational/catalog_io.h"
#include "relational/csv.h"
#include "storage/snapshot.h"

namespace {

/// Renders a query's results (or the error) for byte comparison between
/// the in-memory and the snapshot-loaded engine.
std::string RunQuery(const claks::KeywordSearchEngine& engine,
                     const claks::Database& db, const char* query) {
  claks::SearchOptions options;
  options.max_rdb_edges = 5;
  options.top_k = 10;
  options.instance_check = false;
  auto result = engine.Search(query, options);
  if (!result.ok()) return "error: " + result.status().ToString();
  return result->ToString(db, 10);
}

}  // namespace

int main() {
  auto dataset = claks::GenerateMoviesDataset({});
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const claks::Database& db = *dataset->db;

  // Reverse-engineer the conceptual schema from the relational catalog:
  // the engine detects ACTS_IN and HAS_GENRE as middle relations.
  auto engine = claks::KeywordSearchEngine::Create(dataset->db.get());
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("reverse-engineered conceptual schema:\n%s\n",
              (*engine)->er_schema().ToString().c_str());

  // Person-to-genre: every connection must cross at least one N:M
  // relationship, so all results are conceptually "broad"; the ranker
  // still separates single-N:M-step immediates from hub patterns.
  const char* query = "grace noir";
  std::string original = RunQuery(**engine, db, query);
  std::printf("=== query '%s' ===\n%s\n", query, original.c_str());

  // A role keyword matches inside the middle relation itself ("villain"
  // lives on ACTS_IN rows): connections can end inside a relationship.
  const char* role_query = "villain noir";
  std::string original_roles = RunQuery(**engine, db, role_query);
  std::printf("=== query '%s' (keyword on a relationship attribute) ===\n%s\n",
              role_query, original_roles.c_str());

  // --- Storage lifecycle: CSV export -> bulk ingest -> snapshot -> mmap.
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("claks_movie_explorer_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  std::string csv_dir = (dir / "csv").string();
  std::string snap_path = (dir / "movies.claks").string();

  // 1. Export every table to catalog.txt + CSVs.
  auto saved_csv = claks::SaveDatabase(db, csv_dir);
  if (!saved_csv.ok()) {
    std::fprintf(stderr, "csv export: %s\n", saved_csv.ToString().c_str());
    return 1;
  }
  std::printf("exported %zu tuples to %s\n", db.TotalRows(),
              csv_dir.c_str());

  // 2. Bulk-ingest the CSVs into a fresh database.
  auto ingested = claks::LoadDatabase(csv_dir);
  if (!ingested.ok()) {
    std::fprintf(stderr, "ingest: %s\n",
                 ingested.status().ToString().c_str());
    return 1;
  }
  std::printf("ingested %zu tuples back\n", (*ingested)->TotalRows());

  // 3. Build + warm an engine over the ingested data and serialize the
  //    whole warmed generation into one page-aligned snapshot file.
  auto ingest_engine = claks::KeywordSearchEngine::Create(ingested->get());
  if (!ingest_engine.ok()) {
    std::fprintf(stderr, "%s\n",
                 ingest_engine.status().ToString().c_str());
    return 1;
  }
  (*ingest_engine)->Warmup();
  auto snap_saved = (*ingest_engine)->SaveSnapshot(snap_path);
  if (!snap_saved.ok()) {
    std::fprintf(stderr, "snapshot save: %s\n",
                 snap_saved.ToString().c_str());
    return 1;
  }
  std::printf("snapshot: %ju bytes at %s\n",
              static_cast<uintmax_t>(std::filesystem::file_size(snap_path)),
              snap_path.c_str());

  // 4. Load it back: zero-copy views over the mmap'd file, no
  //    tokenization, graph build or join-index work.
  auto loaded = claks::KeywordSearchEngine::LoadSnapshot(snap_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "snapshot load: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded snapshot: warm=%d, %zu tuples\n",
              loaded->engine->Warm() ? 1 : 0, loaded->db->TotalRows());

  // 5. The loaded engine must answer both queries byte-identically.
  int divergences = 0;
  for (const char* q : {query, role_query}) {
    std::string from_memory = RunQuery(**engine, db, q);
    std::string from_snapshot = RunQuery(*loaded->engine, *loaded->db, q);
    if (from_memory != from_snapshot) {
      std::fprintf(stderr, "DIVERGENCE on '%s':\n-- in-memory --\n%s\n"
                           "-- snapshot --\n%s\n",
                   q, from_memory.c_str(), from_snapshot.c_str());
      ++divergences;
    } else {
      std::printf("query '%s': snapshot results identical\n", q);
    }
  }

  // CSV round trip of one table.
  const claks::Table* studios = db.FindTable("STUDIO");
  std::string csv = claks::TableToCsv(*studios);
  std::printf("STUDIO as CSV (%zu bytes):\n%s", csv.size(),
              csv.substr(0, 200).c_str());

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return divergences == 0 ? 0 : 1;
}
