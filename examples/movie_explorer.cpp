// Copyright 2026 The claks Authors.
//
// Explores the movies dataset: a wider conceptual schema (two N:M and two
// 1:N relationships) with a searchable relationship attribute (ROLE on
// ACTS_IN). Demonstrates reverse engineering the conceptual schema from the
// catalog alone, close/loose verdicts on a person-to-genre query, and CSV
// round-tripping.

#include <cstdio>

#include "core/engine.h"
#include "datasets/movies.h"
#include "relational/csv.h"

int main() {
  auto dataset = claks::GenerateMoviesDataset({});
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const claks::Database& db = *dataset->db;

  // Reverse-engineer the conceptual schema from the relational catalog:
  // the engine detects ACTS_IN and HAS_GENRE as middle relations.
  auto engine = claks::KeywordSearchEngine::Create(dataset->db.get());
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("reverse-engineered conceptual schema:\n%s\n",
              (*engine)->er_schema().ToString().c_str());

  // Person-to-genre: every connection must cross at least one N:M
  // relationship, so all results are conceptually "broad"; the ranker
  // still separates single-N:M-step immediates from hub patterns.
  const char* query = "grace noir";
  claks::SearchOptions options;
  options.max_rdb_edges = 5;
  options.top_k = 10;
  options.instance_check = false;
  auto result = (*engine)->Search(query, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("=== query '%s' ===\n%s\n", query,
              result->ToString(db, 10).c_str());

  size_t close = 0;
  size_t loose = 0;
  for (const claks::SearchHit& hit : result->hits) {
    (hit.schema_close ? close : loose) += 1;
  }
  std::printf("verdicts: %zu close, %zu loose connections\n\n", close,
              loose);

  // A role keyword matches inside the middle relation itself ("villain"
  // lives on ACTS_IN rows): connections can end inside a relationship.
  const char* role_query = "villain noir";
  auto roles = (*engine)->Search(role_query, options);
  if (roles.ok()) {
    std::printf("=== query '%s' (keyword on a relationship attribute) ===\n",
                role_query);
    std::printf("%s\n", roles->ToString(db, 5).c_str());
  }

  // CSV round trip of one table.
  const claks::Table* studios = db.FindTable("STUDIO");
  std::string csv = claks::TableToCsv(*studios);
  std::printf("STUDIO as CSV (%zu bytes):\n%s", csv.size(),
              csv.substr(0, 200).c_str());
  return 0;
}
