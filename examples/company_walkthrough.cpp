// Copyright 2026 The claks Authors.
//
// Full walkthrough of the paper's running example (§3): the database of
// Figure 2, the nine connections of Table 2, schema-level vs instance-level
// closeness, and what MTJNT keeps or loses.

#include <cstdio>

#include "core/engine.h"
#include "core/explain.h"
#include "core/mtjnt.h"
#include "core/sql.h"
#include "datasets/company_paper.h"

namespace {

using claks::AssociationKindToString;
using claks::Connection;
using claks::ConnectionEdge;
using claks::DataAdjacency;
using claks::DataEdge;
using claks::PaperTuple;
using claks::TupleId;

// Builds the connection along named paper tuples.
Connection Conn(const claks::KeywordSearchEngine& engine,
                const claks::Database& db,
                const std::vector<std::string>& names) {
  const claks::DataGraph& graph = engine.data_graph();
  std::vector<TupleId> tuples;
  std::vector<ConnectionEdge> edges;
  for (const auto& name : names) tuples.push_back(PaperTuple(db, name));
  for (size_t i = 0; i + 1 < tuples.size(); ++i) {
    for (const DataAdjacency& adj :
         graph.Neighbors(graph.NodeOf(tuples[i]))) {
      if (adj.neighbor == graph.NodeOf(tuples[i + 1])) {
        const DataEdge& edge = graph.edge(adj.edge_index);
        edges.push_back(ConnectionEdge{edge.fk_index, adj.along_fk != 0});
        break;
      }
    }
  }
  return Connection(std::move(tuples), std::move(edges));
}

}  // namespace

int main() {
  auto dataset = claks::BuildCompanyPaperDataset();
  if (!dataset.ok()) return 1;
  const claks::Database& db = *dataset->db;

  auto engine = claks::KeywordSearchEngine::Create(
      dataset->db.get(), dataset->er_schema, dataset->mapping);
  if (!engine.ok()) return 1;

  std::printf("=== The conceptual schema (Figure 1) ===\n%s\n",
              dataset->er_schema.ToString().c_str());

  std::printf("=== The instance (Figure 2) ===\n");
  for (size_t t = 0; t < db.num_tables(); ++t) {
    std::printf("%s\n", db.table(t).ToString().c_str());
  }

  std::printf("=== The nine connections of Table 2 ===\n");
  const std::vector<std::vector<std::string>> kConnections = {
      {"d1", "e1"},
      {"p1", "w_f1", "e1"},
      {"p1", "d1", "e1"},
      {"d1", "p1", "w_f1", "e1"},
      {"d2", "e2"},
      {"p2", "d2", "e2"},
      {"d2", "p3", "w_f2", "e2"},
      {"d1", "e3", "t1"},
      {"d2", "p2", "w_f3", "e3", "t1"},
  };
  const claks::AssociationAnalyzer& analyzer = (*engine)->analyzer();
  for (size_t i = 0; i < kConnections.size(); ++i) {
    Connection conn = Conn(**engine, db, kConnections[i]);
    auto analysis = analyzer.AnalyzeWithInstanceCheck(conn);
    if (!analysis.ok()) {
      std::fprintf(stderr, "analysis: %s\n",
                   analysis.status().ToString().c_str());
      return 1;
    }
    std::printf("%zu) %s\n", i + 1, analysis->Describe(db).c_str());
  }

  std::printf(
      "\nReading the verdicts: connections 3 and 4 are loose at the schema\n"
      "level but close in this instance (e1 really works on p1 and for d1);\n"
      "connection 6 stays loose: Barbara Smith (e2) does not work on p2.\n");

  std::printf("\n=== The paper's readings (section 3), generated ===\n");
  claks::VerbalizerOptions verbalizer = claks::CompanyPaperVerbalizer();
  verbalizer.keyword_of = {
      {PaperTuple(db, "d1"), "XML"},   {PaperTuple(db, "d2"), "XML"},
      {PaperTuple(db, "p1"), "XML"},   {PaperTuple(db, "p2"), "XML"},
      {PaperTuple(db, "e1"), "Smith"}, {PaperTuple(db, "e2"), "Smith"}};
  const std::vector<std::vector<std::string>> kReadings = {
      {"e1", "d1"},
      {"e1", "w_f1", "p1"},
      {"e1", "d1", "p1"},
      {"e1", "w_f1", "p1", "d1"},
  };
  for (size_t i = 0; i < kReadings.size(); ++i) {
    Connection conn = Conn(**engine, db, kReadings[i]);
    auto reading = claks::ExplainConnection(
        conn, db, dataset->er_schema, dataset->mapping, verbalizer);
    if (reading.ok()) {
      std::printf("  %zu) \"%s\"\n", i + 1, reading->c_str());
    }
  }

  std::printf("\n=== Connection 3 as SQL ===\n");
  auto sql = claks::ConnectionToSql(Conn(**engine, db, {"p1", "d1", "e1"}),
                                    db);
  if (sql.ok()) std::printf("%s\n", sql->c_str());

  std::printf("\n=== Instance statistics (paper section 4 proposal) ===\n");
  std::printf("%s", (*engine)->statistics().ToString().c_str());

  std::printf("\n=== What MTJNT keeps (Tmax = 3 tuples) ===\n");
  claks::SearchOptions mtjnt;
  mtjnt.method = claks::SearchMethod::kMtjnt;
  mtjnt.tmax = 3;
  auto kept = (*engine)->Search("Smith XML", mtjnt);
  if (!kept.ok()) return 1;
  for (const claks::SearchHit& hit : kept->hits) {
    std::printf("  kept: %s\n", hit.rendered.c_str());
  }
  std::printf(
      "Connections 3 and 6 fail minimality; 4 and 7 exceed the size bound\n"
      "— \"connections 3, 4, 6 and 7 are lost\" (paper, section 3).\n");

  std::printf("\n=== Ranking comparison ===\n");
  for (claks::RankerKind kind :
       {claks::RankerKind::kRdbLength, claks::RankerKind::kCloseFirst,
        claks::RankerKind::kInstanceClose}) {
    claks::SearchOptions options;
    options.max_rdb_edges = 3;
    options.ranker = kind;
    auto result = (*engine)->Search("Smith XML", options);
    if (!result.ok()) return 1;
    std::printf("--- ranker: %s\n", claks::RankerKindToString(kind));
    size_t rank = 1;
    for (const claks::SearchHit& hit : result->hits) {
      std::printf("  %zu. %s\n", rank++, hit.rendered.c_str());
    }
  }
  return 0;
}
