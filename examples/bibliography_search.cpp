// Copyright 2026 The claks Authors.
//
// Keyword search over a bibliography (DBLP-style) database: a schema with
// an N:M authorship relation and a *self* N:M citation relation. Shows a
// two-keyword search under three rankers and a three-keyword BANKS search.

#include <cstdio>

#include "core/engine.h"
#include "datasets/bibliography.h"

int main() {
  claks::BibliographyGenOptions options;
  options.num_authors = 25;
  options.num_papers = 50;
  options.seed = 7;
  auto dataset = claks::GenerateBibliographyDataset(options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  std::printf("bibliography: %zu tuples across %zu tables\n",
              dataset->db->TotalRows(), dataset->db->num_tables());

  auto engine = claks::KeywordSearchEngine::Create(
      dataset->db.get(), dataset->er_schema, dataset->mapping);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  // Two-keyword search: connect an author name to a topic.
  const char* query = "vainio xml";
  std::printf("\n=== query '%s', enumerate + close-first ===\n", query);
  claks::SearchOptions search;
  search.max_rdb_edges = 4;
  search.top_k = 8;
  search.instance_check = false;
  auto result = (*engine)->Search(query, search);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", result->ToString(*dataset->db, 8).c_str());

  // The same query, shortest-first: note how a citation hop (one
  // conceptual N:M step but two FK edges) is treated differently.
  std::printf("=== same query, rdb-length ranking ===\n");
  search.ranker = claks::RankerKind::kRdbLength;
  auto by_rdb = (*engine)->Search(query, search);
  if (by_rdb.ok()) {
    std::printf("%s\n", by_rdb->ToString(*dataset->db, 8).c_str());
  }

  // Three keywords: BANKS backward search produces answer trees.
  const char* tri_query = "vainio xml sigmod";
  std::printf("=== query '%s', BANKS (top 5 trees) ===\n", tri_query);
  claks::SearchOptions banks;
  banks.method = claks::SearchMethod::kBanks;
  banks.top_k = 5;
  banks.instance_check = false;
  auto trees = (*engine)->Search(tri_query, banks);
  if (trees.ok()) {
    std::printf("%s\n", trees->ToString(*dataset->db, 5).c_str());
  }

  // MTJNT view of the same three keywords.
  std::printf("=== query '%s', MTJNT (tmax 5) ===\n", tri_query);
  claks::SearchOptions mtjnt;
  mtjnt.method = claks::SearchMethod::kMtjnt;
  mtjnt.tmax = 5;
  mtjnt.top_k = 5;
  mtjnt.instance_check = false;
  auto networks = (*engine)->Search(tri_query, mtjnt);
  if (networks.ok()) {
    std::printf("%s\n", networks->ToString(*dataset->db, 5).c_str());
  }
  return 0;
}
