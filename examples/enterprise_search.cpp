// Copyright 2026 The claks Authors.
//
// Enterprise scenario on the full Elmasri-Navathe COMPANY schema (1:1
// management, self-referencing supervision, two N:M relationships):
// streams top-k answers lazily, inspects instance statistics, and persists
// the database to disk and back.

#include <cstdio>
#include <filesystem>

#include "core/engine.h"
#include "core/topk.h"
#include "datasets/company_full.h"
#include "relational/catalog_io.h"

int main() {
  claks::CompanyFullOptions options;
  options.num_departments = 6;
  options.employees_per_department = 10;
  auto dataset = claks::GenerateCompanyFullDataset(options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  auto engine = claks::KeywordSearchEngine::Create(
      dataset->db.get(), dataset->er_schema, dataset->mapping);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  std::printf("full COMPANY schema: %zu tables, %zu tuples\n",
              dataset->db->num_tables(), dataset->db->TotalRows());
  std::printf("\ninstance statistics (note MANAGES fan-outs of 1.0 on both "
              "sides - the 1:1 relationship):\n%s\n",
              (*engine)->statistics().ToString().c_str());

  // Ranked search across the wider schema.
  const char* query = "research houston";
  claks::SearchOptions search;
  search.max_rdb_edges = 4;
  search.top_k = 8;
  search.instance_check = false;
  auto result = (*engine)->Search(query, search);
  if (result.ok()) {
    std::printf("=== query '%s' ===\n%s\n", query,
                result->ToString(*dataset->db, 8).c_str());
  }

  // Lazy top-k streaming: take the 3 shortest connections without
  // enumerating the rest.
  auto matches = claks::MatchKeywords(
      (*engine)->index(),
      claks::ParseKeywordQuery(query, (*engine)->index().tokenizer()));
  if (claks::AllKeywordsMatched(matches)) {
    std::vector<uint32_t> sources, targets;
    for (const claks::TupleMatch& m : matches[0].matches) {
      sources.push_back((*engine)->data_graph().NodeOf(m.tuple));
    }
    for (const claks::TupleMatch& m : matches[1].matches) {
      targets.push_back((*engine)->data_graph().NodeOf(m.tuple));
    }
    claks::ConnectionStream stream(&(*engine)->data_graph(), sources,
                                   targets, 4);
    auto top3 = claks::StreamTopK(&stream, 3);
    std::printf("=== lazy top-3 (%zu partial paths expanded) ===\n",
                stream.expansions());
    for (const claks::Connection& conn : top3) {
      std::printf("  %s\n", conn.ToString(*dataset->db).c_str());
    }
  }

  // Persist and reload.
  std::string dir =
      (std::filesystem::temp_directory_path() / "claks_enterprise")
          .string();
  auto saved = claks::SaveDatabase(*dataset->db, dir);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  auto loaded = claks::LoadDatabase(dir);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("\npersisted to %s and reloaded: %zu tuples intact\n",
              dir.c_str(), (*loaded)->TotalRows());
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return 0;
}
