// Copyright 2026 The claks Authors.
//
// Close/loose association analysis — the paper's §3 discussion of
// connections 1-9, schema level and instance level.

#include "core/association.h"

#include <gtest/gtest.h>

#include <memory>

#include "datasets/company_paper.h"

namespace claks {
namespace {

class AssociationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    graph_ = std::make_unique<DataGraph>(dataset_.db.get());
    analyzer_ = std::make_unique<AssociationAnalyzer>(
        dataset_.db.get(), &dataset_.er_schema, &dataset_.mapping,
        graph_.get());
  }

  Connection Conn(const std::vector<std::string>& names) {
    std::vector<TupleId> tuples;
    std::vector<ConnectionEdge> edges;
    for (const auto& name : names) {
      tuples.push_back(PaperTuple(*dataset_.db, name));
    }
    for (size_t i = 0; i + 1 < tuples.size(); ++i) {
      uint32_t a = graph_->NodeOf(tuples[i]);
      bool found = false;
      for (const DataAdjacency& adj : graph_->Neighbors(a)) {
        if (adj.neighbor == graph_->NodeOf(tuples[i + 1])) {
          const DataEdge& edge = graph_->edge(adj.edge_index);
          edges.push_back(ConnectionEdge{edge.fk_index, adj.along_fk != 0});
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found);
    }
    return Connection(std::move(tuples), std::move(edges));
  }

  ConnectionAnalysis Analyze(const std::vector<std::string>& names) {
    auto analysis = analyzer_->Analyze(Conn(names));
    EXPECT_TRUE(analysis.ok()) << analysis.status().ToString();
    return std::move(analysis).ValueOrDie();
  }

  bool InstanceClose(const std::vector<std::string>& names) {
    auto close = analyzer_->IsInstanceClose(Conn(names));
    EXPECT_TRUE(close.ok()) << close.status().ToString();
    return *close;
  }

  CompanyPaperDataset dataset_;
  std::unique_ptr<DataGraph> graph_;
  std::unique_ptr<AssociationAnalyzer> analyzer_;
};

// --- Schema (intensional) level, paper §3:
// "connections 1 and 2 have a close association and connections 3 and 4
// have a loose association".

TEST_F(AssociationTest, Connection1SchemaClose) {
  auto analysis = Analyze({"d1", "e1"});
  EXPECT_EQ(analysis.kind, AssociationKind::kImmediate);
  EXPECT_TRUE(analysis.schema_close);
  EXPECT_EQ(analysis.rdb_length, 1u);
  EXPECT_EQ(analysis.er_length, 1u);
}

TEST_F(AssociationTest, Connection2SchemaClose) {
  auto analysis = Analyze({"p1", "w_f1", "e1"});
  EXPECT_EQ(analysis.kind, AssociationKind::kImmediate);
  EXPECT_TRUE(analysis.schema_close);
  EXPECT_EQ(analysis.rdb_length, 2u);
  EXPECT_EQ(analysis.er_length, 1u);
}

TEST_F(AssociationTest, Connection3SchemaLooseTransitiveNM) {
  auto analysis = Analyze({"p1", "d1", "e1"});
  EXPECT_EQ(analysis.kind, AssociationKind::kTransitiveNM);
  EXPECT_FALSE(analysis.schema_close);
  EXPECT_EQ(analysis.hub_patterns, 1u);
  EXPECT_EQ(analysis.nm_steps, 0u);
}

TEST_F(AssociationTest, Connection4SchemaLooseMixed) {
  auto analysis = Analyze({"d1", "p1", "w_f1", "e1"});
  EXPECT_EQ(analysis.kind, AssociationKind::kMixedLoose);
  EXPECT_FALSE(analysis.schema_close);
  EXPECT_EQ(analysis.hub_patterns, 0u);
  EXPECT_EQ(analysis.nm_steps, 1u);
}

TEST_F(AssociationTest, Connection8SchemaClose) {
  // d1 - e3 - t1: transitive functional (1:N, 1:N).
  auto analysis = Analyze({"d1", "e3", "t1"});
  EXPECT_EQ(analysis.kind, AssociationKind::kTransitiveFunctional);
  EXPECT_TRUE(analysis.schema_close);
}

TEST_F(AssociationTest, Connection9SchemaLoose) {
  auto analysis = Analyze({"d2", "p2", "w_f3", "e3", "t1"});
  EXPECT_EQ(analysis.kind, AssociationKind::kMixedLoose);
  EXPECT_FALSE(analysis.schema_close);
  EXPECT_EQ(analysis.er_length, 3u);
  EXPECT_EQ(analysis.rdb_length, 4u);
}

// --- Instance (extensional) level, paper §3:
// "in an instance level, also connections 3 and 4 have a close association
// between the entities" while connection 6 stays loose ("Barbara is also
// associated with project p2 ... although she does not work in it").

TEST_F(AssociationTest, Connection3InstanceClose) {
  EXPECT_TRUE(InstanceClose({"p1", "d1", "e1"}));
}

TEST_F(AssociationTest, Connection4InstanceClose) {
  EXPECT_TRUE(InstanceClose({"d1", "p1", "w_f1", "e1"}));
}

TEST_F(AssociationTest, Connection6InstanceLoose) {
  EXPECT_FALSE(InstanceClose({"p2", "d2", "e2"}));
}

TEST_F(AssociationTest, Connection7InstanceClose) {
  // d2 and e2 are directly associated (e2 works for d2).
  EXPECT_TRUE(InstanceClose({"d2", "p3", "w_f2", "e2"}));
}

TEST_F(AssociationTest, SchemaCloseConnectionsAreInstanceClose) {
  EXPECT_TRUE(InstanceClose({"d1", "e1"}));
  EXPECT_TRUE(InstanceClose({"d1", "e3", "t1"}));
}

TEST_F(AssociationTest, AnalyzeWithInstanceCheckFillsField) {
  auto analysis = analyzer_->AnalyzeWithInstanceCheck(Conn({"p2", "d2",
                                                            "e2"}));
  ASSERT_TRUE(analysis.ok());
  ASSERT_TRUE(analysis->instance_close.has_value());
  EXPECT_FALSE(*analysis->instance_close);
  EXPECT_FALSE(analysis->schema_close);
}

TEST_F(AssociationTest, StrictInstanceCheckConnection9) {
  // Connection 9: d2 - p2 - w_f3 - e3 - t1. Endpoints d2 and t1 have no
  // functional witness (t1's employee e3 works for d1, not d2), so even
  // the endpoint check fails.
  auto strict = analyzer_->IsInstanceCloseStrict(
      Conn({"d2", "p2", "w_f3", "e3", "t1"}));
  ASSERT_TRUE(strict.ok());
  EXPECT_FALSE(*strict);
  auto endpoint = analyzer_->IsInstanceClose(
      Conn({"d2", "p2", "w_f3", "e3", "t1"}));
  ASSERT_TRUE(endpoint.ok());
  EXPECT_FALSE(*endpoint);
}

TEST_F(AssociationTest, StrictImpliesEndpointCheck) {
  for (auto names : std::vector<std::vector<std::string>>{
           {"p1", "d1", "e1"},
           {"d1", "p1", "w_f1", "e1"},
           {"p2", "d2", "e2"},
           {"d2", "p3", "w_f2", "e2"}}) {
    auto strict = analyzer_->IsInstanceCloseStrict(Conn(names));
    auto endpoint = analyzer_->IsInstanceClose(Conn(names));
    ASSERT_TRUE(strict.ok());
    ASSERT_TRUE(endpoint.ok());
    if (*strict) {
      EXPECT_TRUE(*endpoint);
    }
  }
}

TEST_F(AssociationTest, WitnessBudgetMatters) {
  // With a witness budget of 1 edge, connection 4's close witness
  // d1 - e1 (1 edge) is still found.
  auto close =
      analyzer_->IsInstanceClose(Conn({"d1", "p1", "w_f1", "e1"}), 1);
  ASSERT_TRUE(close.ok());
  EXPECT_TRUE(*close);
  // Connection 3's witness p1 - w_f1 - e1 needs 2 edges; budget 1 fails.
  auto tight = analyzer_->IsInstanceClose(Conn({"p1", "d1", "e1"}), 1);
  ASSERT_TRUE(tight.ok());
  EXPECT_FALSE(*tight);
}

TEST_F(AssociationTest, DescribeIncludesVerdicts) {
  auto analysis = analyzer_->AnalyzeWithInstanceCheck(Conn({"p2", "d2",
                                                            "e2"}));
  ASSERT_TRUE(analysis.ok());
  std::string s = analysis->Describe(*dataset_.db);
  EXPECT_NE(s.find("loose"), std::string::npos);
  EXPECT_NE(s.find("instance-loose"), std::string::npos);
  EXPECT_NE(s.find("TransitiveNM"), std::string::npos);
}

TEST_F(AssociationTest, SingleTupleIsClose) {
  auto analysis = Analyze({"d1"});
  EXPECT_TRUE(analysis.schema_close);
  EXPECT_EQ(analysis.er_length, 0u);
}

}  // namespace
}  // namespace claks
