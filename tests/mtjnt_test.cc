// Copyright 2026 The claks Authors.
//
// MTJNT semantics tests, including the paper's §3 claim that the MTJNT
// approach loses connections 3, 4, 6 and 7 of its running example.

#include "core/mtjnt.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "datasets/company_paper.h"

namespace claks {
namespace {

class MtjntTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    graph_ = std::make_unique<DataGraph>(dataset_.db.get());
    schema_graph_ = std::make_unique<SchemaGraph>(dataset_.db.get());
    index_ = std::make_unique<InvertedIndex>(dataset_.db.get());
    matches_ = MatchKeywords(
        *index_, ParseKeywordQuery("Smith XML", index_->tokenizer()));
    masks_ = ComputeKeywordMasks(matches_);
  }

  uint32_t N(const std::string& name) {
    return graph_->NodeOf(PaperTuple(*dataset_.db, name));
  }

  TupleTree Tree(const std::vector<std::string>& names) {
    TupleTree tree;
    for (const auto& name : names) tree.nodes.push_back(N(name));
    std::sort(tree.nodes.begin(), tree.nodes.end());
    // Collect the edges between consecutive names.
    for (size_t i = 0; i + 1 < names.size(); ++i) {
      uint32_t a = N(names[i]);
      for (const DataAdjacency& adj : graph_->Neighbors(a)) {
        if (adj.neighbor == N(names[i + 1])) {
          tree.edge_indices.push_back(adj.edge_index);
          break;
        }
      }
    }
    std::sort(tree.edge_indices.begin(), tree.edge_indices.end());
    EXPECT_EQ(tree.edge_indices.size() + 1, tree.nodes.size());
    return tree;
  }

  bool ContainsTree(const std::vector<TupleTree>& trees,
                    const TupleTree& tree) {
    for (const TupleTree& t : trees) {
      if (t == tree) return true;
    }
    return false;
  }

  CompanyPaperDataset dataset_;
  std::unique_ptr<DataGraph> graph_;
  std::unique_ptr<SchemaGraph> schema_graph_;
  std::unique_ptr<InvertedIndex> index_;
  std::vector<KeywordMatches> matches_;
  std::map<TupleId, uint32_t> masks_;
};

TEST_F(MtjntTest, KeywordMasks) {
  EXPECT_EQ(masks_.size(), 6u);  // e1,e2 smith; d1,d2,p1,p2 xml
  EXPECT_EQ(masks_[PaperTuple(*dataset_.db, "e1")], 1u);
  EXPECT_EQ(masks_[PaperTuple(*dataset_.db, "d1")], 2u);
}

TEST_F(MtjntTest, TotalityAndMinimality) {
  TupleTree conn1 = Tree({"d1", "e1"});
  EXPECT_TRUE(IsTotal(*graph_, conn1, masks_, 2));
  EXPECT_TRUE(IsMinimalTotal(*graph_, conn1, masks_, 2));

  // Connection 3 (p1 - d1 - e1) is total but NOT minimal: removing leaf p1
  // leaves d1 - e1 which is still total.
  TupleTree conn3 = Tree({"p1", "d1", "e1"});
  EXPECT_TRUE(IsTotal(*graph_, conn3, masks_, 2));
  EXPECT_FALSE(IsMinimalTotal(*graph_, conn3, masks_, 2));

  // Connection 7 (d2 - p3 - w_f2 - e2) IS minimal: removing d2 loses xml.
  TupleTree conn7 = Tree({"d2", "p3", "w_f2", "e2"});
  EXPECT_TRUE(IsTotal(*graph_, conn7, masks_, 2));
  EXPECT_TRUE(IsMinimalTotal(*graph_, conn7, masks_, 2));

  // A tree missing smith entirely is not total.
  TupleTree xml_only = Tree({"d1", "p1"});
  EXPECT_FALSE(IsTotal(*graph_, xml_only, masks_, 2));
  EXPECT_FALSE(IsMinimalTotal(*graph_, xml_only, masks_, 2));
}

TEST_F(MtjntTest, PaperClaimTmax3LosesConnections3467) {
  // With Tmax = 3 tuples: connections 3 and 6 are excluded by minimality;
  // connections 4 and 7 exceed the size bound. Exactly the paper's claim.
  auto mtjnts = EnumerateMtjnt(*graph_, matches_, 3);
  EXPECT_TRUE(ContainsTree(mtjnts, Tree({"d1", "e1"})));            // 1
  EXPECT_TRUE(ContainsTree(mtjnts, Tree({"p1", "w_f1", "e1"})));    // 2
  EXPECT_FALSE(ContainsTree(mtjnts, Tree({"p1", "d1", "e1"})));     // 3
  EXPECT_FALSE(
      ContainsTree(mtjnts, Tree({"d1", "p1", "w_f1", "e1"})));      // 4
  EXPECT_TRUE(ContainsTree(mtjnts, Tree({"d2", "e2"})));            // 5
  EXPECT_FALSE(ContainsTree(mtjnts, Tree({"p2", "d2", "e2"})));     // 6
  EXPECT_FALSE(
      ContainsTree(mtjnts, Tree({"d2", "p3", "w_f2", "e2"})));      // 7
}

TEST_F(MtjntTest, Tmax4RecoversConnection7Only) {
  auto mtjnts = EnumerateMtjnt(*graph_, matches_, 4);
  // 7 is minimal (p3 carries no keyword), so the size bound was its only
  // obstacle.
  EXPECT_TRUE(ContainsTree(mtjnts, Tree({"d2", "p3", "w_f2", "e2"})));
  // 3, 4, 6 remain lost at any Tmax: they are non-minimal.
  EXPECT_FALSE(ContainsTree(mtjnts, Tree({"p1", "d1", "e1"})));
  EXPECT_FALSE(ContainsTree(mtjnts, Tree({"d1", "p1", "w_f1", "e1"})));
  EXPECT_FALSE(ContainsTree(mtjnts, Tree({"p2", "d2", "e2"})));
}

TEST_F(MtjntTest, AllResultsAreMinimalAndTotal) {
  for (size_t tmax : {2, 3, 4, 5}) {
    for (const TupleTree& tree : EnumerateMtjnt(*graph_, matches_, tmax)) {
      EXPECT_LE(tree.size(), tmax);
      EXPECT_TRUE(IsMinimalTotal(*graph_, tree, masks_, 2));
    }
  }
}

TEST_F(MtjntTest, UnmatchedKeywordYieldsNothing) {
  auto matches = MatchKeywords(
      *index_, ParseKeywordQuery("Smith quantum", index_->tokenizer()));
  EXPECT_TRUE(EnumerateMtjnt(*graph_, matches, 4).empty());
}

TEST_F(MtjntTest, SingleKeywordSingleTupleTrees) {
  auto matches = MatchKeywords(
      *index_, ParseKeywordQuery("Smith", index_->tokenizer()));
  auto mtjnts = EnumerateMtjnt(*graph_, matches, 3);
  // Each matched tuple alone is the minimal total network.
  ASSERT_EQ(mtjnts.size(), 2u);
  for (const TupleTree& tree : mtjnts) {
    EXPECT_EQ(tree.size(), 1u);
  }
}

TEST_F(MtjntTest, ThreeKeywordTrees) {
  auto matches = MatchKeywords(
      *index_, ParseKeywordQuery("Smith XML Alice", index_->tokenizer()));
  ASSERT_TRUE(AllKeywordsMatched(matches));
  auto mtjnts = EnumerateMtjnt(*graph_, matches, 6);
  ASSERT_FALSE(mtjnts.empty());
  auto masks = ComputeKeywordMasks(matches);
  for (const TupleTree& tree : mtjnts) {
    EXPECT_TRUE(IsMinimalTotal(*graph_, tree, masks, 3));
  }
}

TEST_F(MtjntTest, TupleTreePathDetectionAndConversion) {
  TupleTree path = Tree({"p1", "w_f1", "e1"});
  EXPECT_TRUE(path.IsPath(*graph_));
  Connection conn = path.ToConnection(*graph_);
  EXPECT_EQ(conn.RdbLength(), 2u);

  TupleTree single;
  single.nodes = {N("d1")};
  EXPECT_TRUE(single.IsPath(*graph_));
  EXPECT_EQ(single.ToConnection(*graph_).RdbLength(), 0u);

  // A star around e3 is not a path: e3 with d1, t1, t2.
  TupleTree star = Tree({"d1", "e3"});
  for (const DataAdjacency& adj : graph_->Neighbors(N("e3"))) {
    if (adj.neighbor == N("t1") || adj.neighbor == N("t2")) {
      star.nodes.push_back(adj.neighbor);
      star.edge_indices.push_back(adj.edge_index);
    }
  }
  std::sort(star.nodes.begin(), star.nodes.end());
  std::sort(star.edge_indices.begin(), star.edge_indices.end());
  EXPECT_FALSE(star.IsPath(*graph_));
}

TEST_F(MtjntTest, LeavesComputed) {
  TupleTree path = Tree({"p1", "w_f1", "e1"});
  auto leaves = path.Leaves(*graph_);
  ASSERT_EQ(leaves.size(), 2u);
  std::set<uint32_t> leaf_set(leaves.begin(), leaves.end());
  EXPECT_TRUE(leaf_set.count(N("p1")) > 0);
  EXPECT_TRUE(leaf_set.count(N("e1")) > 0);
}

// --- DISCOVER candidate-network pipeline ----------------------------------

TEST_F(MtjntTest, DiscoverMatchesDataLevelEnumeration) {
  for (size_t tmax : {2, 3, 4, 5}) {
    auto data_level = EnumerateMtjnt(*graph_, matches_, tmax);
    auto discover =
        DiscoverMtjnt(*graph_, *schema_graph_, matches_, tmax);
    EXPECT_EQ(data_level.size(), discover.size()) << "tmax " << tmax;
    for (const TupleTree& tree : data_level) {
      EXPECT_TRUE(ContainsTree(discover, tree));
    }
  }
}

TEST_F(MtjntTest, CandidateNetworksCoverKeywordsWithNonFreeLeaves) {
  std::vector<std::vector<uint32_t>> masks_per_table(
      schema_graph_->num_tables());
  for (const auto& [tuple, mask] : masks_) {
    auto& masks = masks_per_table[tuple.table];
    if (std::find(masks.begin(), masks.end(), mask) == masks.end()) {
      masks.push_back(mask);
    }
  }
  auto cns = GenerateCandidateNetworks(*schema_graph_, masks_per_table, 2,
                                       4);
  ASSERT_FALSE(cns.empty());
  for (const CandidateNetwork& cn : cns) {
    uint32_t covered = 0;
    for (const CnNode& node : cn.nodes) covered |= node.keyword_mask;
    EXPECT_EQ(covered, 3u);
    EXPECT_LE(cn.size(), 4u);
  }
}

TEST_F(MtjntTest, CanonicalFormDeduplicates) {
  CandidateNetwork a;
  a.nodes = {CnNode{0, 1}, CnNode{1, 2}};
  a.edges = {{0, 1, 0, true}};
  CandidateNetwork b;
  b.nodes = {CnNode{1, 2}, CnNode{0, 1}};
  b.edges = {{1, 0, 0, true}};
  EXPECT_EQ(a.Canonical(), b.Canonical());

  CandidateNetwork c = a;
  c.edges[0].a_is_referencing = false;
  EXPECT_NE(a.Canonical(), c.Canonical());
}

TEST_F(MtjntTest, DiscoverThreeKeywords) {
  auto matches = MatchKeywords(
      *index_, ParseKeywordQuery("Smith XML Alice", index_->tokenizer()));
  auto data_level = EnumerateMtjnt(*graph_, matches, 5);
  auto discover = DiscoverMtjnt(*graph_, *schema_graph_, matches, 5);
  EXPECT_EQ(data_level.size(), discover.size());
}

}  // namespace
}  // namespace claks
