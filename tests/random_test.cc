// Copyright 2026 The claks Authors.

#include "common/random.h"

#include <gtest/gtest.h>

#include <set>

namespace claks {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.Uniform(4, 4), 4);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  const int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.05);
}

TEST(RngTest, IndexCoversRange) {
  Rng rng(17);
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) {
    size_t idx = rng.Index(5);
    EXPECT_LT(idx, 5u);
    seen.insert(idx);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, ZipfInRangeAndSkewed) {
  Rng rng(19);
  size_t counts[10] = {0};
  for (int i = 0; i < 5000; ++i) {
    size_t v = rng.Zipf(10, 1.5);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  // Rank 0 must dominate rank 9 heavily.
  EXPECT_GT(counts[0], counts[9] * 5);
}

TEST(ShuffleTest, PermutationPreserved) {
  Rng rng(21);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  Shuffle(&v, &rng);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(ShuffleTest, DeterministicForSeed) {
  std::vector<int> v1{1, 2, 3, 4, 5};
  std::vector<int> v2{1, 2, 3, 4, 5};
  Rng r1(33), r2(33);
  Shuffle(&v1, &r1);
  Shuffle(&v2, &r2);
  EXPECT_EQ(v1, v2);
}

}  // namespace
}  // namespace claks
