// Copyright 2026 The claks Authors.
//
// Randomised round-trip properties: arbitrary (seeded) tables must survive
// CSV serialisation and catalog persistence bit-for-bit, including nasty
// field content (separators, quotes, newlines, unicode bytes).

#include <gtest/gtest.h>

#include <filesystem>

#include "common/random.h"
#include "relational/catalog_io.h"
#include "relational/csv.h"

namespace claks {
namespace {

// Deterministically builds a table with adversarial string content.
Table RandomTable(uint64_t seed, size_t rows) {
  Rng rng(seed);
  Table table(TableSchema(
      "FUZZ",
      {{"ID", ValueType::kString, false, false},
       {"TXT", ValueType::kString, /*nullable=*/false, true},
       {"NUM", ValueType::kInt64, /*nullable=*/true, false},
       {"FLAG", ValueType::kBool, /*nullable=*/true, false}},
      {"ID"}));
  const char* kFragments[] = {
      "plain",  "comma,inside", "quote\"inside", "new\nline",
      "tab\t",  "'single'",     "\"\"double\"\"", "trailing ",
      " lead",  "ümlaut",       "semi;colon",    "", "x",
  };
  for (size_t r = 0; r < rows; ++r) {
    std::string text;
    size_t pieces = 1 + rng.Index(4);
    for (size_t p = 0; p < pieces; ++p) {
      text += kFragments[rng.Index(std::size(kFragments))];
    }
    Value num = rng.Bernoulli(0.2)
                    ? Value::Null()
                    : Value::Int64(rng.Uniform(-1000000, 1000000));
    Value flag = rng.Bernoulli(0.2) ? Value::Null()
                                    : Value::Bool(rng.Bernoulli(0.5));
    auto inserted = table.InsertValues(
        {Value::String("r" + std::to_string(r)), Value::String(text),
         std::move(num), std::move(flag)});
    EXPECT_TRUE(inserted.ok());
  }
  return table;
}

class CsvFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvFuzzTest, CsvRoundTripIsExact) {
  Table original = RandomTable(GetParam(), 40);
  std::string csv = TableToCsv(original);

  Table reloaded(original.schema());
  auto status = LoadCsvInto(&reloaded, csv);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_EQ(reloaded.num_rows(), original.num_rows());
  for (size_t r = 0; r < original.num_rows(); ++r) {
    // NULL INT64/BOOL round-trip as NULL; strings must be byte-identical.
    EXPECT_EQ(reloaded.row(r), original.row(r)) << "row " << r;
  }
}

TEST_P(CsvFuzzTest, ParseNeverCrashesOnTruncations) {
  Table original = RandomTable(GetParam(), 10);
  std::string csv = TableToCsv(original);
  // Any prefix must either parse or fail cleanly — never crash.
  for (size_t cut = 0; cut < csv.size(); cut += 7) {
    auto records = ParseCsv(csv.substr(0, cut));
    (void)records;
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 21));

class CatalogFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CatalogFuzzTest, DatabaseRoundTripViaDirectory) {
  Database db;
  // Two linked tables with fuzzed content: FUZZ plus a referencing child.
  {
    Table source = RandomTable(GetParam(), 25);
    auto parent = db.AddTable(source.schema());
    ASSERT_TRUE(parent.ok());
    for (size_t r = 0; r < source.num_rows(); ++r) {
      ASSERT_TRUE((*parent)->Insert(source.row(r)).ok());
    }
  }
  {
    auto child = db.AddTable(TableSchema(
        "CHILD",
        {{"ID", ValueType::kString, false, false},
         {"FUZZ_ID", ValueType::kString, /*nullable=*/true, false}},
        {"ID"}, {{"fk", {"FUZZ_ID"}, "FUZZ", {"ID"}}}));
    ASSERT_TRUE(child.ok());
    Rng rng(GetParam() * 31 + 7);
    for (size_t r = 0; r < 10; ++r) {
      Value ref = rng.Bernoulli(0.3)
                      ? Value::Null()
                      : Value::String("r" + std::to_string(rng.Index(25)));
      ASSERT_TRUE((*child)
                      ->InsertValues({Value::String("c" + std::to_string(r)),
                                      std::move(ref)})
                      .ok());
    }
  }
  ASSERT_TRUE(db.CheckReferentialIntegrity().ok());

  std::string dir = "/tmp/claks_fuzz_" + std::to_string(GetParam());
  ASSERT_TRUE(SaveDatabase(db, dir).ok());
  auto loaded = LoadDatabase(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ((*loaded)->num_tables(), db.num_tables());
  for (size_t t = 0; t < db.num_tables(); ++t) {
    ASSERT_EQ((*loaded)->table(t).num_rows(), db.table(t).num_rows());
    for (size_t r = 0; r < db.table(t).num_rows(); ++r) {
      EXPECT_EQ((*loaded)->table(t).row(r), db.table(t).row(r));
    }
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CatalogFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 7));

}  // namespace
}  // namespace claks
