// Copyright 2026 The claks Authors.
//
// Instance-statistics tests (the paper's §4 future-work criterion).

#include "core/statistics.h"

#include <gtest/gtest.h>

#include <memory>

#include "datasets/company_paper.h"

namespace claks {
namespace {

class StatisticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    graph_ = std::make_unique<DataGraph>(dataset_.db.get());
    stats_ = std::make_unique<InstanceStatistics>(
        dataset_.db.get(), &dataset_.er_schema, &dataset_.mapping);
  }

  Connection Conn(const std::vector<std::string>& names) {
    std::vector<TupleId> tuples;
    std::vector<ConnectionEdge> edges;
    for (const auto& name : names) {
      tuples.push_back(PaperTuple(*dataset_.db, name));
    }
    for (size_t i = 0; i + 1 < tuples.size(); ++i) {
      for (const DataAdjacency& adj :
           graph_->Neighbors(graph_->NodeOf(tuples[i]))) {
        if (adj.neighbor == graph_->NodeOf(tuples[i + 1])) {
          const DataEdge& edge = graph_->edge(adj.edge_index);
          edges.push_back(ConnectionEdge{edge.fk_index, adj.along_fk != 0});
          break;
        }
      }
    }
    return Connection(std::move(tuples), std::move(edges));
  }

  ErProjection Project(const std::vector<std::string>& names) {
    auto projection = ProjectToEr(Conn(names), *dataset_.db,
                                  dataset_.er_schema, dataset_.mapping);
    EXPECT_TRUE(projection.ok());
    return std::move(projection).ValueOrDie();
  }

  CompanyPaperDataset dataset_;
  std::unique_ptr<DataGraph> graph_;
  std::unique_ptr<InstanceStatistics> stats_;
};

TEST_F(StatisticsTest, WorksForStats) {
  // 4 employees, each in one of 2 departments (d1, d2); d3 idle.
  const RelationshipStats& s = stats_->StatsFor("WORKS_FOR");
  EXPECT_EQ(s.link_count, 4u);
  EXPECT_EQ(s.left_participants, 2u);   // d1, d2
  EXPECT_EQ(s.left_total, 3u);          // d3 does not participate
  EXPECT_EQ(s.right_participants, 4u);  // all employees
  EXPECT_EQ(s.right_total, 4u);
  EXPECT_DOUBLE_EQ(s.AvgFanoutLeftToRight(), 2.0);   // 2 employees/dept
  EXPECT_DOUBLE_EQ(s.AvgFanoutRightToLeft(), 1.0);   // functional
  EXPECT_NEAR(s.LeftParticipation(), 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.RightParticipation(), 1.0);
}

TEST_F(StatisticsTest, WorksOnStats) {
  // WORKS_FOR table: 4 rows, 3 distinct projects, 4 distinct employees.
  const RelationshipStats& s = stats_->StatsFor("WORKS_ON");
  EXPECT_EQ(s.link_count, 4u);
  EXPECT_EQ(s.left_participants, 3u);   // p1, p2, p3
  EXPECT_EQ(s.right_participants, 4u);  // e1..e4
  EXPECT_NEAR(s.AvgFanoutLeftToRight(), 4.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.AvgFanoutRightToLeft(), 1.0);
}

TEST_F(StatisticsTest, ControlsStats) {
  const RelationshipStats& s = stats_->StatsFor("CONTROLS");
  EXPECT_EQ(s.link_count, 3u);
  EXPECT_EQ(s.left_participants, 2u);  // d1, d2
  EXPECT_NEAR(s.AvgFanoutLeftToRight(), 1.5, 1e-9);
}

TEST_F(StatisticsTest, DependentsStats) {
  const RelationshipStats& s = stats_->StatsFor("DEPENDENTS_OF");
  EXPECT_EQ(s.link_count, 2u);
  EXPECT_EQ(s.left_participants, 1u);  // only e3
  EXPECT_DOUBLE_EQ(s.AvgFanoutLeftToRight(), 2.0);
  EXPECT_EQ(s.right_total, 2u);
}

TEST_F(StatisticsTest, FunctionalStepsHaveUnitFanout) {
  // e1 -> d1 travels EMPLOYEE -> DEPARTMENT (right to left of WORKS_FOR):
  // each employee has exactly one department.
  auto projection = Project({"e1", "d1"});
  ASSERT_EQ(projection.steps.size(), 1u);
  EXPECT_FALSE(projection.steps[0].left_to_right);
  EXPECT_DOUBLE_EQ(stats_->StepFanout(projection.steps[0]), 1.0);
}

TEST_F(StatisticsTest, LooseDirectionFanoutAboveOne) {
  // d1 -> e1 travels DEPARTMENT -> EMPLOYEE: 2 employees per department.
  auto projection = Project({"d1", "e1"});
  ASSERT_EQ(projection.steps.size(), 1u);
  EXPECT_TRUE(projection.steps[0].left_to_right);
  EXPECT_DOUBLE_EQ(stats_->StepFanout(projection.steps[0]), 2.0);
}

TEST_F(StatisticsTest, AmbiguityOfPaperConnections) {
  // Connection 3 (p1 - d1 - e1): project N:1 department (fanout 1), then
  // department 1:N employee (fanout 2): ambiguity 2 — the hub admits two
  // employees.
  EXPECT_DOUBLE_EQ(stats_->ConnectionAmbiguity(Project({"p1", "d1", "e1"})),
                   2.0);
  // Connection 1 read employee -> department is functional: ambiguity 1.
  EXPECT_DOUBLE_EQ(stats_->ConnectionAmbiguity(Project({"e1", "d1"})), 1.0);
  // Connection 2 (p1 - w_f1 - e1) travels PROJECT -> EMPLOYEE with fanout
  // 4/3.
  EXPECT_NEAR(stats_->ConnectionAmbiguity(Project({"p1", "w_f1", "e1"})),
              4.0 / 3.0, 1e-9);
}

TEST_F(StatisticsTest, AmbiguityOrdersLooseAboveClose) {
  double close = stats_->ConnectionAmbiguity(Project({"e1", "d1"}));
  double loose = stats_->ConnectionAmbiguity(Project({"p1", "d1", "e1"}));
  EXPECT_LT(close, loose);
}

TEST_F(StatisticsTest, ToStringListsAllRelationships) {
  std::string s = stats_->ToString();
  for (const char* rel :
       {"WORKS_FOR", "WORKS_ON", "CONTROLS", "DEPENDENTS_OF"}) {
    EXPECT_NE(s.find(rel), std::string::npos) << rel;
  }
}

TEST_F(StatisticsTest, UnknownRelationshipFanoutDefaultsToOne) {
  ErProjectedStep step;
  step.relationship = "NOPE";
  EXPECT_DOUBLE_EQ(stats_->StepFanout(step), 1.0);
}

}  // namespace
}  // namespace claks
