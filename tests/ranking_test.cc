// Copyright 2026 The claks Authors.

#include "core/ranking.h"

#include <gtest/gtest.h>

#include <set>

namespace claks {
namespace {

// Rank inputs modelled on the paper's connections 1-7 (Table 2):
// index 0..6 = connection 1..7.
std::vector<RankInput> PaperInputs() {
  auto make = [](size_t rdb, size_t er, size_t hubs, size_t nm, bool close,
                 bool instance_close) {
    RankInput in;
    in.rdb_length = rdb;
    in.er_length = er;
    in.hub_patterns = hubs;
    in.nm_steps = nm;
    in.schema_close = close;
    in.instance_close = instance_close;
    in.text_score = 1.0;
    return in;
  };
  return {
      make(1, 1, 0, 0, true, true),    // 1: d1-e1
      make(2, 1, 0, 0, true, true),    // 2: p1-w_f1-e1
      make(2, 2, 1, 0, false, true),   // 3: p1-d1-e1
      make(3, 2, 0, 1, false, true),   // 4: d1-p1-w_f1-e1
      make(1, 1, 0, 0, true, true),    // 5: d2-e2
      make(2, 2, 1, 0, false, false),  // 6: p2-d2-e2
      make(3, 2, 0, 1, false, true),   // 7: d2-p3-w_f2-e2
  };
}

// Position of connection `id` (1-based) in the ranked order.
size_t PosOf(const std::vector<size_t>& order, size_t id) {
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == id - 1) return i;
  }
  ADD_FAILURE();
  return SIZE_MAX;
}

TEST(RankerTest, FactoryProducesAllKinds) {
  for (RankerKind kind :
       {RankerKind::kRdbLength, RankerKind::kErLength,
        RankerKind::kCloseFirst, RankerKind::kLoosePenalty,
        RankerKind::kInstanceClose, RankerKind::kCombined,
        RankerKind::kAmbiguity, RankerKind::kMoreContext}) {
    auto ranker = MakeRanker(kind);
    ASSERT_NE(ranker, nullptr);
    EXPECT_EQ(ranker->name(), RankerKindToString(kind));
  }
}

TEST(RankerTest, AmbiguityRankerOrdersByFanout) {
  RankInput crisp;
  crisp.ambiguity = 1.0;
  crisp.er_length = 3;
  RankInput vague;
  vague.ambiguity = 4.0;
  vague.er_length = 1;
  auto order = RankOrder({vague, crisp},
                         *MakeRanker(RankerKind::kAmbiguity));
  EXPECT_EQ(order[0], 1u);  // the unambiguous one wins despite length
}

TEST(RankerTest, MoreContextPrefersLongerUnambiguous) {
  // Paper §2: "a longer connection should be ranked before shorter
  // connections" when emphasising access to more information. On the
  // paper inputs: {4, 7} (er 2, no hubs) above {1, 2, 5} (er 1), with the
  // hub connections {3, 6} still last.
  auto inputs = PaperInputs();
  auto order = RankOrder(inputs, *MakeRanker(RankerKind::kMoreContext));
  std::set<size_t> top{order[0] + 1, order[1] + 1};
  EXPECT_EQ(top, (std::set<size_t>{4, 7}));
  std::set<size_t> bottom{order[5] + 1, order[6] + 1};
  EXPECT_EQ(bottom, (std::set<size_t>{3, 6}));
}

TEST(RankerTest, RdbLengthRanking) {
  // Paper: "If the rank ... were based on the length of the connection in
  // RDB, the best connections are 1 and 5 and the worst connections are 4
  // and 7."
  auto inputs = PaperInputs();
  auto order = RankOrder(inputs, *MakeRanker(RankerKind::kRdbLength));
  EXPECT_LT(PosOf(order, 1), 2u);
  EXPECT_LT(PosOf(order, 5), 2u);
  EXPECT_GE(PosOf(order, 4), 5u);
  EXPECT_GE(PosOf(order, 7), 5u);
}

TEST(RankerTest, CloseFirstRankingMatchesPaper) {
  // Paper: "If the length of the ER-model were followed and the close
  // associations were emphasized, the best connections are 1, 2 and 5 and
  // the worst connections are 3 and 6. ... connections 4 and 7 have a
  // better rank."
  auto inputs = PaperInputs();
  auto order = RankOrder(inputs, *MakeRanker(RankerKind::kCloseFirst));
  EXPECT_LT(PosOf(order, 1), 3u);
  EXPECT_LT(PosOf(order, 2), 3u);
  EXPECT_LT(PosOf(order, 5), 3u);
  // 4 and 7 before 3 and 6.
  EXPECT_LT(PosOf(order, 4), PosOf(order, 3));
  EXPECT_LT(PosOf(order, 4), PosOf(order, 6));
  EXPECT_LT(PosOf(order, 7), PosOf(order, 3));
  EXPECT_LT(PosOf(order, 7), PosOf(order, 6));
  // 3 and 6 last.
  EXPECT_GE(PosOf(order, 3), 5u);
  EXPECT_GE(PosOf(order, 6), 5u);
}

TEST(RankerTest, ErLengthPromotesConnection2) {
  auto inputs = PaperInputs();
  auto order = RankOrder(inputs, *MakeRanker(RankerKind::kErLength));
  // Under RDB length, connection 2 (rdb 2) ranks below 1 and 5 (rdb 1);
  // under ER length it ties at 1 and lands in the top 3.
  EXPECT_LT(PosOf(order, 2), 3u);
}

TEST(RankerTest, LoosePenaltyGroupsLooseLast) {
  auto inputs = PaperInputs();
  auto order = RankOrder(inputs, *MakeRanker(RankerKind::kLoosePenalty));
  // Connections with loose points (3,4,6,7) all rank below 1,2,5.
  for (size_t loose : {3u, 4u, 6u, 7u}) {
    for (size_t close : {1u, 2u, 5u}) {
      EXPECT_GT(PosOf(order, loose), PosOf(order, close));
    }
  }
}

TEST(RankerTest, InstanceCloseDemotesConnection6) {
  auto inputs = PaperInputs();
  auto order = RankOrder(inputs, *MakeRanker(RankerKind::kInstanceClose));
  // Connection 6 is the only instance-loose one: dead last.
  EXPECT_EQ(PosOf(order, 6), inputs.size() - 1);
  // Connection 3 (instance-close) beats 6.
  EXPECT_LT(PosOf(order, 3), PosOf(order, 6));
}

TEST(RankerTest, InstanceCloseFallsBackToSchema) {
  RankInput unverified;
  unverified.schema_close = false;
  RankInput close;
  close.schema_close = true;
  auto order = RankOrder({unverified, close},
                         *MakeRanker(RankerKind::kInstanceClose));
  EXPECT_EQ(order[0], 1u);
}

TEST(RankerTest, CombinedPrefersHigherTextAtEqualStructure) {
  RankInput weak;
  weak.er_length = 1;
  weak.text_score = 0.5;
  RankInput strong = weak;
  strong.text_score = 2.0;
  auto order = RankOrder({weak, strong},
                         *MakeRanker(RankerKind::kCombined));
  EXPECT_EQ(order[0], 1u);
}

TEST(RankerTest, CombinedPenalisesStructure) {
  RankInput shallow;
  shallow.er_length = 1;
  shallow.text_score = 1.0;
  RankInput deep = shallow;
  deep.er_length = 4;
  deep.hub_patterns = 2;
  auto order =
      RankOrder({deep, shallow}, *MakeRanker(RankerKind::kCombined));
  EXPECT_EQ(order[0], 1u);
}

TEST(RankOrderTest, StableForTies) {
  RankInput a;
  a.rdb_length = 1;
  RankInput b;
  b.rdb_length = 1;
  auto order = RankOrder({a, b}, *MakeRanker(RankerKind::kRdbLength));
  EXPECT_EQ(order, (std::vector<size_t>{0, 1}));
}

TEST(KendallTest, IdenticalIsZero) {
  EXPECT_EQ(KendallTauDistance({0, 1, 2}, {0, 1, 2}), 0.0);
}

TEST(KendallTest, ReversedIsOne) {
  EXPECT_EQ(KendallTauDistance({0, 1, 2, 3}, {3, 2, 1, 0}), 1.0);
}

TEST(KendallTest, SingleSwap) {
  EXPECT_NEAR(KendallTauDistance({0, 1, 2}, {1, 0, 2}), 1.0 / 3.0, 1e-9);
}

TEST(KendallTest, TinyInputs) {
  EXPECT_EQ(KendallTauDistance({}, {}), 0.0);
  EXPECT_EQ(KendallTauDistance({0}, {0}), 0.0);
}

TEST(KendallTest, RdbVsCloseFirstDiffer) {
  auto inputs = PaperInputs();
  auto rdb = RankOrder(inputs, *MakeRanker(RankerKind::kRdbLength));
  auto close_first =
      RankOrder(inputs, *MakeRanker(RankerKind::kCloseFirst));
  EXPECT_GT(KendallTauDistance(rdb, close_first), 0.0);
}

}  // namespace
}  // namespace claks
