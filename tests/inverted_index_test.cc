// Copyright 2026 The claks Authors.

#include "text/inverted_index.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "datasets/company_paper.h"

namespace claks {
namespace {

class InvertedIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    index_ = std::make_unique<InvertedIndex>(dataset_.db.get());
  }
  CompanyPaperDataset dataset_;
  std::unique_ptr<InvertedIndex> index_;
};

TEST_F(InvertedIndexTest, XmlMatchesTwoDepartmentsAndTwoProjects) {
  const auto& postings = index_->Lookup("xml");
  std::set<std::string> labels;
  for (const Posting& p : postings) {
    labels.insert(dataset_.db->TupleLabel(p.tuple));
  }
  EXPECT_EQ(labels, (std::set<std::string>{"DEPARTMENT:d1", "DEPARTMENT:d2",
                                           "PROJECT:p1", "PROJECT:p2"}));
}

TEST_F(InvertedIndexTest, SmithMatchesTwoEmployees) {
  EXPECT_EQ(index_->DocumentFrequency("smith"), 2u);
}

TEST_F(InvertedIndexTest, LookupKeywordNormalises) {
  EXPECT_EQ(index_->LookupKeyword("XML.").size(),
            index_->Lookup("xml").size());
  EXPECT_EQ(index_->LookupKeyword("Smith").size(), 2u);
}

TEST_F(InvertedIndexTest, AbsentTokenYieldsEmpty) {
  EXPECT_TRUE(index_->Lookup("quantum").empty());
  EXPECT_EQ(index_->DocumentFrequency("quantum"), 0u);
}

TEST_F(InvertedIndexTest, NonSearchableAttributesNotIndexed) {
  // Tuple ids like "d1" are key attributes marked non-searchable.
  EXPECT_TRUE(index_->Lookup("d1").empty());
  EXPECT_TRUE(index_->Lookup("e1").empty());
}

TEST_F(InvertedIndexTest, TermFrequencyCounted) {
  // "teaching" appears once per department description.
  const auto& postings = index_->Lookup("teaching");
  ASSERT_EQ(postings.size(), 3u);
  for (const Posting& p : postings) {
    EXPECT_EQ(p.term_frequency, 1u);
  }
  // "xml" appears twice in p2: name "XML and IR" and description "XML
  // offers...".
  size_t p2_postings = 0;
  for (const Posting& p : index_->Lookup("xml")) {
    if (dataset_.db->TupleLabel(p.tuple) == "PROJECT:p2") ++p2_postings;
  }
  EXPECT_EQ(p2_postings, 2u);  // two distinct attributes
}

TEST_F(InvertedIndexTest, StatsPopulated) {
  const IndexStats& stats = index_->stats();
  EXPECT_GT(stats.total_documents, 0u);
  EXPECT_GT(stats.total_tokens, stats.total_documents);
  EXPECT_GT(stats.avg_document_length, 1.0);
  EXPECT_GT(index_->vocabulary_size(), 10u);
}

TEST(InvertedIndexEmptyTest, EmptyDatabase) {
  Database db;
  InvertedIndex index(&db);
  EXPECT_EQ(index.vocabulary_size(), 0u);
  EXPECT_TRUE(index.Lookup("x").empty());
}

}  // namespace
}  // namespace claks
