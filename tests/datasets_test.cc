// Copyright 2026 The claks Authors.

#include <gtest/gtest.h>

#include "datasets/bibliography.h"
#include "datasets/company_gen.h"
#include "datasets/company_paper.h"
#include "datasets/movies.h"

namespace claks {
namespace {

TEST(CompanyPaperTest, PaperTupleLookups) {
  auto dataset = BuildCompanyPaperDataset();
  ASSERT_TRUE(dataset.ok());
  const Database& db = *dataset->db;
  EXPECT_EQ(db.TupleLabel(PaperTuple(db, "d1")), "DEPARTMENT:d1");
  EXPECT_EQ(db.TupleLabel(PaperTuple(db, "e4")), "EMPLOYEE:e4");
  EXPECT_EQ(db.TupleLabel(PaperTuple(db, "t2")), "DEPENDENT:t2");
  EXPECT_EQ(db.TupleLabel(PaperTuple(db, "w_f3")), "WORKS_FOR:e3,p2");
}

TEST(CompanyGenTest, DeterministicForSeed) {
  CompanyGenOptions options;
  options.seed = 99;
  auto a = GenerateCompanyDataset(options);
  auto b = GenerateCompanyDataset(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->db->num_tables(), b->db->num_tables());
  for (size_t t = 0; t < a->db->num_tables(); ++t) {
    const Table& ta = a->db->table(t);
    const Table& tb = b->db->table(t);
    ASSERT_EQ(ta.num_rows(), tb.num_rows());
    for (size_t r = 0; r < ta.num_rows(); ++r) {
      EXPECT_EQ(ta.row(r), tb.row(r));
    }
  }
}

TEST(CompanyGenTest, DifferentSeedsDiffer) {
  CompanyGenOptions a_opts;
  a_opts.seed = 1;
  CompanyGenOptions b_opts;
  b_opts.seed = 2;
  auto a = GenerateCompanyDataset(a_opts);
  auto b = GenerateCompanyDataset(b_opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool differ = false;
  for (size_t t = 0; t < a->db->num_tables() && !differ; ++t) {
    if (a->db->table(t).num_rows() != b->db->table(t).num_rows()) {
      differ = true;
      break;
    }
    for (size_t r = 0; r < a->db->table(t).num_rows(); ++r) {
      if (a->db->table(t).row(r) != b->db->table(t).row(r)) {
        differ = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differ);
}

TEST(CompanyGenTest, SizesScaleWithOptions) {
  CompanyGenOptions options;
  options.num_departments = 7;
  options.employees_per_department = 4;
  options.projects_per_department = 2;
  auto dataset = GenerateCompanyDataset(options);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->db->FindTable("DEPARTMENT")->num_rows(), 7u);
  EXPECT_EQ(dataset->db->FindTable("EMPLOYEE")->num_rows(), 28u);
  EXPECT_EQ(dataset->db->FindTable("PROJECT")->num_rows(), 14u);
}

TEST(CompanyGenTest, IntegrityAndMapping) {
  auto dataset = GenerateCompanyDataset({});
  ASSERT_TRUE(dataset.ok());
  EXPECT_TRUE(dataset->db->CheckReferentialIntegrity().ok());
  EXPECT_TRUE(dataset->mapping.IsMiddleRelation("WORKS_ON"));
  EXPECT_EQ(dataset->er_schema.relationships().size(), 4u);
}

TEST(BibliographyTest, BuildsWithSelfNM) {
  auto dataset = GenerateBibliographyDataset({});
  ASSERT_TRUE(dataset.ok());
  EXPECT_TRUE(dataset->db->CheckReferentialIntegrity().ok());
  const Table* cites = dataset->db->FindTable("CITES");
  ASSERT_NE(cites, nullptr);
  EXPECT_GT(cites->num_rows(), 0u);
  // CITES' two FK columns both reference PAPER.
  EXPECT_EQ(cites->schema().foreign_keys()[0].referenced_table, "PAPER");
  EXPECT_EQ(cites->schema().foreign_keys()[1].referenced_table, "PAPER");
}

TEST(BibliographyTest, Deterministic) {
  auto a = GenerateBibliographyDataset({});
  auto b = GenerateBibliographyDataset({});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->db->TotalRows(), b->db->TotalRows());
}

TEST(BibliographyTest, NoSelfCitations) {
  auto dataset = GenerateBibliographyDataset({});
  ASSERT_TRUE(dataset.ok());
  const Table* cites = dataset->db->FindTable("CITES");
  for (size_t r = 0; r < cites->num_rows(); ++r) {
    EXPECT_NE(cites->row(r)[0], cites->row(r)[1]);
  }
}

TEST(MoviesTest, BuildsConsistently) {
  auto dataset = GenerateMoviesDataset({});
  ASSERT_TRUE(dataset.ok());
  EXPECT_TRUE(dataset->db->CheckReferentialIntegrity().ok());
  EXPECT_EQ(dataset->db->FindTable("MOVIE")->num_rows(), 40u);
  EXPECT_TRUE(dataset->mapping.IsMiddleRelation("ACTS_IN"));
  EXPECT_TRUE(dataset->mapping.IsMiddleRelation("HAS_GENRE"));
  EXPECT_FALSE(dataset->mapping.IsMiddleRelation("MOVIE"));
}

TEST(MoviesTest, RoleIsSearchableRelationshipAttribute) {
  auto dataset = GenerateMoviesDataset({});
  ASSERT_TRUE(dataset.ok());
  const Table* acts_in = dataset->db->FindTable("ACTS_IN");
  ASSERT_NE(acts_in, nullptr);
  auto role = acts_in->schema().AttributeIndex("ROLE");
  ASSERT_TRUE(role.has_value());
  EXPECT_TRUE(acts_in->schema().attribute(*role).searchable);
}

TEST(MoviesTest, ScaleOptions) {
  MoviesGenOptions options;
  options.num_movies = 5;
  options.num_people = 8;
  auto dataset = GenerateMoviesDataset(options);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->db->FindTable("MOVIE")->num_rows(), 5u);
  EXPECT_EQ(dataset->db->FindTable("PERSON")->num_rows(), 8u);
}

}  // namespace
}  // namespace claks
