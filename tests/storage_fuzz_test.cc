// Copyright 2026 The claks Authors.
//
// Fuzz-style corruption sweep over the snapshot loader: starting from a
// valid snapshot, flip random bits and truncate at random offsets, and
// assert every corrupted file is *cleanly rejected* — a typed
// StorageError status, never a crash, hang, or silently-garbled engine.
// The per-section + whole-file + header checksums (storage/format.h)
// make this deterministic: any single flipped bit lands in exactly one
// checksummed region.
//
// The sweep is seeded; set CLAKS_STORAGE_FUZZ_SEED to reproduce a
// failing run (the seed is printed on every run).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>

#include "datasets/company_gen.h"
#include "storage/format.h"
#include "storage/snapshot.h"

namespace claks {
namespace {

class StorageFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("claks_storage_fuzz_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    auto dataset = GenerateCompanyDataset(CompanyGenOptions{});
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    auto engine = KeywordSearchEngine::Create(
        dataset_.db.get(), dataset_.er_schema, dataset_.mapping);
    ASSERT_TRUE(engine.ok());
    engine_ = std::move(engine).ValueOrDie();
    engine_->Warmup();
    path_ = (dir_ / "seed.claks").string();
    ASSERT_TRUE(engine_->SaveSnapshot(path_).ok());
    std::ifstream in(path_, std::ios::binary);
    bytes_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    ASSERT_FALSE(bytes_.empty());

    const char* env = std::getenv("CLAKS_STORAGE_FUZZ_SEED");
    seed_ = env != nullptr ? std::strtoull(env, nullptr, 10) : 20260808ULL;
    std::fprintf(stderr,
                 "storage fuzz seed: %llu (set CLAKS_STORAGE_FUZZ_SEED to "
                 "reproduce)\n",
                 static_cast<unsigned long long>(seed_));
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// Writes `bytes` and asserts the loader rejects it with a typed
  /// storage error (or, for a mangled header, any clean non-OK status).
  void ExpectCleanRejection(const std::string& bytes,
                            const std::string& what) {
    std::string corrupt_path = (dir_ / "corrupt.claks").string();
    {
      std::ofstream out(corrupt_path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    Result<LoadedEngine> loaded =
        KeywordSearchEngine::LoadSnapshot(corrupt_path);
    ASSERT_FALSE(loaded.ok()) << what << ": corrupted snapshot loaded OK";
    // Not just any failure: the loader must speak the typed taxonomy
    // for in-format corruption (mmap-level failures report kNone).
    EXPECT_NE(loaded.status().message().find("snapshot["), std::string::npos)
        << what << ": untyped rejection: " << loaded.status().ToString();
  }

  std::filesystem::path dir_;
  GeneratedDataset dataset_;
  std::unique_ptr<KeywordSearchEngine> engine_;
  std::string path_;
  std::string bytes_;
  uint64_t seed_ = 0;
};

TEST_F(StorageFuzzTest, RandomSingleBitFlipsAreRejected) {
  std::mt19937_64 rng(seed_);
  std::uniform_int_distribution<size_t> byte_at(0, bytes_.size() - 1);
  std::uniform_int_distribution<int> bit_at(0, 7);
  for (int round = 0; round < 200; ++round) {
    size_t offset = byte_at(rng);
    int bit = bit_at(rng);
    std::string corrupt = bytes_;
    corrupt[offset] ^= static_cast<char>(1 << bit);
    ExpectCleanRejection(corrupt, "bit flip at byte " +
                                      std::to_string(offset) + " bit " +
                                      std::to_string(bit));
  }
}

TEST_F(StorageFuzzTest, RandomTruncationsAreRejected) {
  std::mt19937_64 rng(seed_ ^ 0x9e3779b97f4a7c15ULL);
  std::uniform_int_distribution<size_t> keep_at(0, bytes_.size() - 1);
  for (int round = 0; round < 100; ++round) {
    size_t keep = keep_at(rng);
    if (keep == 0) continue;  // MmapFile rejects empty files upstream
    ExpectCleanRejection(bytes_.substr(0, keep),
                         "truncation to " + std::to_string(keep) + " bytes");
  }
}

TEST_F(StorageFuzzTest, RandomMultiByteGarbageIsRejected) {
  std::mt19937_64 rng(seed_ ^ 0xdeadbeefULL);
  std::uniform_int_distribution<size_t> byte_at(0, bytes_.size() - 1);
  std::uniform_int_distribution<int> garbage(0, 255);
  std::uniform_int_distribution<int> burst_len(1, 64);
  for (int round = 0; round < 100; ++round) {
    std::string corrupt = bytes_;
    size_t start = byte_at(rng);
    size_t len = std::min<size_t>(burst_len(rng), corrupt.size() - start);
    bool changed = false;
    for (size_t i = 0; i < len; ++i) {
      char next = static_cast<char>(garbage(rng));
      changed |= corrupt[start + i] != next;
      corrupt[start + i] = next;
    }
    if (!changed) continue;
    ExpectCleanRejection(corrupt, "garbage burst at " +
                                      std::to_string(start) + " len " +
                                      std::to_string(len));
  }
}

TEST_F(StorageFuzzTest, ValidSnapshotStillLoadsAfterTheSweep) {
  // Guard against the sweep passing because loading is simply broken.
  Result<LoadedEngine> loaded = KeywordSearchEngine::LoadSnapshot(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  SearchOptions options;
  options.top_k = 5;
  auto result = loaded->engine->Search("xml research", options);
  ASSERT_TRUE(result.ok());
}

}  // namespace
}  // namespace claks
