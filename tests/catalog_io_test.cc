// Copyright 2026 The claks Authors.

#include "relational/catalog_io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "core/engine.h"
#include "datasets/company_paper.h"

namespace claks {
namespace {

class CatalogIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    dir_ = std::filesystem::temp_directory_path() /
           ("claks_catalog_test_" + std::to_string(::getpid()));
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  CompanyPaperDataset dataset_;
  std::filesystem::path dir_;
};

TEST_F(CatalogIoTest, SerializeListsEveryTable) {
  std::string catalog = SerializeCatalog(*dataset_.db);
  for (const char* table : {"DEPARTMENT", "PROJECT", "WORKS_FOR",
                            "EMPLOYEE", "DEPENDENT"}) {
    EXPECT_NE(catalog.find(std::string("TABLE ") + table),
              std::string::npos);
  }
  EXPECT_NE(catalog.find("FK WORKS_FOR D_ID REFERENCES DEPARTMENT ID"),
            std::string::npos);
  EXPECT_NE(catalog.find("PK ESSN P_ID"), std::string::npos);
}

TEST_F(CatalogIoTest, CatalogRoundTrip) {
  std::string catalog = SerializeCatalog(*dataset_.db);
  auto schemas = ParseCatalog(catalog);
  ASSERT_TRUE(schemas.ok()) << schemas.status().ToString();
  ASSERT_EQ(schemas->size(), dataset_.db->num_tables());
  for (size_t t = 0; t < schemas->size(); ++t) {
    const TableSchema& original = dataset_.db->table(t).schema();
    const TableSchema& parsed = (*schemas)[t];
    EXPECT_EQ(parsed.name(), original.name());
    EXPECT_EQ(parsed.num_attributes(), original.num_attributes());
    EXPECT_EQ(parsed.primary_key(), original.primary_key());
    ASSERT_EQ(parsed.foreign_keys().size(),
              original.foreign_keys().size());
    for (size_t f = 0; f < parsed.foreign_keys().size(); ++f) {
      EXPECT_EQ(parsed.foreign_keys()[f].referenced_table,
                original.foreign_keys()[f].referenced_table);
      EXPECT_EQ(parsed.foreign_keys()[f].local_attributes,
                original.foreign_keys()[f].local_attributes);
    }
    for (size_t a = 0; a < parsed.num_attributes(); ++a) {
      EXPECT_EQ(parsed.attribute(a).name, original.attribute(a).name);
      EXPECT_EQ(parsed.attribute(a).type, original.attribute(a).type);
      EXPECT_EQ(parsed.attribute(a).nullable,
                original.attribute(a).nullable);
      EXPECT_EQ(parsed.attribute(a).searchable,
                original.attribute(a).searchable);
    }
  }
}

TEST_F(CatalogIoTest, ParserRejectsMalformedInput) {
  EXPECT_TRUE(ParseCatalog("ATTR X STRING notnull searchable\n")
                  .status()
                  .IsParseError());  // outside TABLE
  EXPECT_TRUE(ParseCatalog("TABLE A\nTABLE B\n").status().IsParseError());
  EXPECT_TRUE(ParseCatalog("TABLE A\nATTR X STRING notnull searchable\n")
                  .status()
                  .IsParseError());  // unterminated
  EXPECT_TRUE(ParseCatalog("TABLE A\nATTR X WIBBLE notnull searchable\n"
                           "PK X\nEND\n")
                  .status()
                  .IsParseError());  // bad type
  EXPECT_TRUE(ParseCatalog("TABLE A\nATTR X STRING maybe searchable\n"
                           "PK X\nEND\n")
                  .status()
                  .IsParseError());  // bad null-mode
  EXPECT_TRUE(ParseCatalog("TABLE A\nATTR X STRING notnull searchable\n"
                           "PK X\nFK f REFERENCES B\nEND\n")
                  .status()
                  .IsParseError());  // FK without attributes
  EXPECT_TRUE(ParseCatalog("GARBAGE\n").status().IsParseError());
}

TEST_F(CatalogIoTest, CommentsAndBlankLinesIgnored) {
  auto schemas = ParseCatalog(
      "# header comment\n"
      "\n"
      "TABLE A\n"
      "ATTR ID STRING notnull nosearch\n"
      "PK ID\n"
      "END\n");
  ASSERT_TRUE(schemas.ok());
  EXPECT_EQ(schemas->size(), 1u);
}

TEST_F(CatalogIoTest, SaveAndLoadDatabaseRoundTrip) {
  ASSERT_TRUE(SaveDatabase(*dataset_.db, dir_.string()).ok());
  EXPECT_TRUE(std::filesystem::exists(dir_ / "catalog.txt"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "EMPLOYEE.csv"));

  auto loaded = LoadDatabase(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ((*loaded)->num_tables(), dataset_.db->num_tables());
  for (size_t t = 0; t < dataset_.db->num_tables(); ++t) {
    const Table& original = dataset_.db->table(t);
    const Table& round_tripped = (*loaded)->table(t);
    ASSERT_EQ(round_tripped.num_rows(), original.num_rows());
    for (size_t r = 0; r < original.num_rows(); ++r) {
      EXPECT_EQ(round_tripped.row(r), original.row(r)) << t << ":" << r;
    }
  }
}

TEST_F(CatalogIoTest, LoadedDatabaseAnswersQueries) {
  ASSERT_TRUE(SaveDatabase(*dataset_.db, dir_.string()).ok());
  auto loaded = LoadDatabase(dir_.string());
  ASSERT_TRUE(loaded.ok());
  // The loaded catalog supports the full engine pipeline via reverse
  // engineering.
  auto engine = KeywordSearchEngine::Create(loaded->get());
  ASSERT_TRUE(engine.ok());
  SearchOptions options;
  options.max_rdb_edges = 3;
  auto result = (*engine)->Search("Smith XML", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->hits.size(), 7u);
}

TEST_F(CatalogIoTest, LoadMissingDirectoryFails) {
  EXPECT_TRUE(LoadDatabase("/nonexistent/claks").status().IsNotFound());
}

}  // namespace
}  // namespace claks
