// Copyright 2026 The claks Authors.
//
// Tests for OR keyword semantics and endpoint-diversity grouping.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/engine.h"
#include "datasets/company_paper.h"

namespace claks {
namespace {

class EngineOptionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    auto engine = KeywordSearchEngine::Create(
        dataset_.db.get(), dataset_.er_schema, dataset_.mapping);
    ASSERT_TRUE(engine.ok());
    engine_ = std::move(engine).ValueOrDie();
  }

  CompanyPaperDataset dataset_;
  std::unique_ptr<KeywordSearchEngine> engine_;
};

TEST_F(EngineOptionsTest, AndSemanticsEmptyOnUnmatchedKeyword) {
  SearchOptions options;
  options.max_rdb_edges = 3;
  auto result = engine_->Search("Smith quantum", options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->hits.empty());
}

TEST_F(EngineOptionsTest, OrSemanticsDropsUnmatchedKeyword) {
  SearchOptions options;
  options.max_rdb_edges = 3;
  options.require_all_keywords = false;
  // "quantum" matches nothing: the query degrades to single-keyword
  // "smith", which yields the two matched tuples.
  auto result = engine_->Search("Smith quantum", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->query.keywords, std::vector<std::string>{"smith"});
  EXPECT_EQ(result->hits.size(), 2u);
}

TEST_F(EngineOptionsTest, OrSemanticsKeepsTwoMatchedKeywords) {
  SearchOptions options;
  options.max_rdb_edges = 3;
  options.require_all_keywords = false;
  auto result = engine_->Search("Smith XML quantum", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->query.keywords,
            (std::vector<std::string>{"smith", "xml"}));
  EXPECT_EQ(result->hits.size(), 7u);  // the paper's rows 1-7
}

TEST_F(EngineOptionsTest, OrSemanticsAllUnmatchedStillEmpty) {
  SearchOptions options;
  options.require_all_keywords = false;
  auto result = engine_->Search("quantum entanglement", options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->hits.empty());
}

TEST_F(EngineOptionsTest, EndpointDiversityCollapsesGroups) {
  SearchOptions options;
  options.max_rdb_edges = 3;
  options.per_endpoint_limit = 1;
  auto result = engine_->Search("Smith XML", options);
  ASSERT_TRUE(result.ok());
  // Endpoint pairs of the 7 connections: (d1,e1) x2, (p1,e1) x2,
  // (d2,e2) x2, (p2,e2) x1 -> 4 survivors.
  EXPECT_EQ(result->hits.size(), 4u);
  std::set<std::pair<uint64_t, uint64_t>> groups;
  for (const SearchHit& hit : result->hits) {
    ASSERT_TRUE(hit.connection.has_value());
    auto key = std::minmax(hit.connection->front().Pack(),
                           hit.connection->back().Pack());
    EXPECT_TRUE(groups.insert(key).second);  // all distinct
  }
}

TEST_F(EngineOptionsTest, DiversityKeepsTheBestPerGroup) {
  SearchOptions options;
  options.max_rdb_edges = 3;
  options.per_endpoint_limit = 1;
  options.ranker = RankerKind::kCloseFirst;
  auto result = engine_->Search("Smith XML", options);
  ASSERT_TRUE(result.ok());
  // The (d1,e1) group contains connections 1 (close, er 1) and 4 (loose,
  // er 2): the survivor must be the close one.
  for (const SearchHit& hit : result->hits) {
    TupleId d1 = PaperTuple(*dataset_.db, "d1");
    if (hit.connection->front() == d1 || hit.connection->back() == d1) {
      if (hit.connection->ContainsTuple(PaperTuple(*dataset_.db, "e1"))) {
        EXPECT_EQ(hit.rdb_length, 1u);
        EXPECT_TRUE(hit.schema_close);
      }
    }
  }
}

TEST_F(EngineOptionsTest, DiversityLimitTwoKeepsEverythingHere) {
  SearchOptions options;
  options.max_rdb_edges = 3;
  options.per_endpoint_limit = 2;
  auto result = engine_->Search("Smith XML", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->hits.size(), 7u);  // no group exceeds 2
}

TEST_F(EngineOptionsTest, DiversityComposesWithTopK) {
  SearchOptions options;
  options.max_rdb_edges = 3;
  options.per_endpoint_limit = 1;
  options.top_k = 2;
  auto result = engine_->Search("Smith XML", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->hits.size(), 2u);
}

}  // namespace
}  // namespace claks
