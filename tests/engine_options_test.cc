// Copyright 2026 The claks Authors.
//
// Tests for OR keyword semantics and endpoint-diversity grouping.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/engine.h"
#include "datasets/company_paper.h"

namespace claks {
namespace {

class EngineOptionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    auto engine = KeywordSearchEngine::Create(
        dataset_.db.get(), dataset_.er_schema, dataset_.mapping);
    ASSERT_TRUE(engine.ok());
    engine_ = std::move(engine).ValueOrDie();
  }

  CompanyPaperDataset dataset_;
  std::unique_ptr<KeywordSearchEngine> engine_;
};

TEST_F(EngineOptionsTest, AndSemanticsEmptyOnUnmatchedKeyword) {
  SearchOptions options;
  options.max_rdb_edges = 3;
  auto result = engine_->Search("Smith quantum", options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->hits.empty());
}

TEST_F(EngineOptionsTest, OrSemanticsDropsUnmatchedKeyword) {
  SearchOptions options;
  options.max_rdb_edges = 3;
  options.require_all_keywords = false;
  // "quantum" matches nothing: the query degrades to single-keyword
  // "smith", which yields the two matched tuples.
  auto result = engine_->Search("Smith quantum", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->query.keywords, std::vector<std::string>{"smith"});
  EXPECT_EQ(result->hits.size(), 2u);
}

TEST_F(EngineOptionsTest, OrSemanticsKeepsTwoMatchedKeywords) {
  SearchOptions options;
  options.max_rdb_edges = 3;
  options.require_all_keywords = false;
  auto result = engine_->Search("Smith XML quantum", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->query.keywords,
            (std::vector<std::string>{"smith", "xml"}));
  EXPECT_EQ(result->hits.size(), 7u);  // the paper's rows 1-7
}

TEST_F(EngineOptionsTest, OrSemanticsAllUnmatchedStillEmpty) {
  SearchOptions options;
  options.require_all_keywords = false;
  auto result = engine_->Search("quantum entanglement", options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->hits.empty());
}

TEST_F(EngineOptionsTest, EndpointDiversityCollapsesGroups) {
  SearchOptions options;
  options.max_rdb_edges = 3;
  options.per_endpoint_limit = 1;
  auto result = engine_->Search("Smith XML", options);
  ASSERT_TRUE(result.ok());
  // Endpoint pairs of the 7 connections: (d1,e1) x2, (p1,e1) x2,
  // (d2,e2) x2, (p2,e2) x1 -> 4 survivors.
  EXPECT_EQ(result->hits.size(), 4u);
  std::set<std::pair<uint64_t, uint64_t>> groups;
  for (const SearchHit& hit : result->hits) {
    ASSERT_TRUE(hit.connection.has_value());
    // Not `auto`: std::minmax returns a pair of references, and binding
    // it to Pack()'s temporaries would dangle past the full expression.
    uint64_t front_key = hit.connection->front().Pack();
    uint64_t back_key = hit.connection->back().Pack();
    std::pair<uint64_t, uint64_t> key = std::minmax(front_key, back_key);
    EXPECT_TRUE(groups.insert(key).second);  // all distinct
  }
}

TEST_F(EngineOptionsTest, DiversityKeepsTheBestPerGroup) {
  SearchOptions options;
  options.max_rdb_edges = 3;
  options.per_endpoint_limit = 1;
  options.ranker = RankerKind::kCloseFirst;
  auto result = engine_->Search("Smith XML", options);
  ASSERT_TRUE(result.ok());
  // The (d1,e1) group contains connections 1 (close, er 1) and 4 (loose,
  // er 2): the survivor must be the close one.
  for (const SearchHit& hit : result->hits) {
    TupleId d1 = PaperTuple(*dataset_.db, "d1");
    if (hit.connection->front() == d1 || hit.connection->back() == d1) {
      if (hit.connection->ContainsTuple(PaperTuple(*dataset_.db, "e1"))) {
        EXPECT_EQ(hit.rdb_length, 1u);
        EXPECT_TRUE(hit.schema_close);
      }
    }
  }
}

TEST_F(EngineOptionsTest, DiversityLimitTwoKeepsEverythingHere) {
  SearchOptions options;
  options.max_rdb_edges = 3;
  options.per_endpoint_limit = 2;
  auto result = engine_->Search("Smith XML", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->hits.size(), 7u);  // no group exceeds 2
}

TEST_F(EngineOptionsTest, DiversityComposesWithTopK) {
  SearchOptions options;
  options.max_rdb_edges = 3;
  options.per_endpoint_limit = 1;
  options.top_k = 2;
  auto result = engine_->Search("Smith XML", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->hits.size(), 2u);
}

// Regression: per_endpoint_limit used to key non-path trees by the
// front/back of the *sorted node list*, so distinct trees sharing their
// min/max node ids collided and one was silently dropped. Grouping now
// keys by the full keyword-tuple set.
//
// The instance below produces exactly two MTJNT trees for
// "alpha beta gamma": star(h1; a1, b1, c1) with sorted nodes {0, 1, 3, 5}
// and star(h2; a1, b2, c1) with sorted nodes {0, 2, 4, 5} — identical
// min/max (a1 = 0, c1 = 5) but different keyword sets ({a1, b1, c1} vs
// {a1, b2, c1}).
TEST(EndpointGroupingRegressionTest, DistinctTreesSharingMinMaxNodeIds) {
  Database db;
  auto a = db.AddTable(TableSchema(
      "A", {{"ID", ValueType::kString}, {"TXT", ValueType::kString}},
      {"ID"}));
  ASSERT_TRUE(a.ok());
  auto b = db.AddTable(TableSchema(
      "B", {{"ID", ValueType::kString}, {"TXT", ValueType::kString}},
      {"ID"}));
  ASSERT_TRUE(b.ok());
  auto h = db.AddTable(TableSchema(
      "H",
      {{"ID", ValueType::kString},
       {"A_ID", ValueType::kString},
       {"B_ID", ValueType::kString}},
      {"ID"},
      {{"fk_a", {"A_ID"}, "A", {"ID"}}, {"fk_b", {"B_ID"}, "B", {"ID"}}}));
  ASSERT_TRUE(h.ok());
  auto c = db.AddTable(TableSchema(
      "C",
      {{"ID", ValueType::kString},
       {"TXT", ValueType::kString},
       {"H1_ID", ValueType::kString},
       {"H2_ID", ValueType::kString}},
      {"ID"},
      {{"fk_h1", {"H1_ID"}, "H", {"ID"}},
       {"fk_h2", {"H2_ID"}, "H", {"ID"}}}));
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(
      (*a)->InsertValues({Value::String("a1"), Value::String("alpha")}).ok());
  ASSERT_TRUE(
      (*b)->InsertValues({Value::String("b1"), Value::String("beta")}).ok());
  ASSERT_TRUE(
      (*b)->InsertValues({Value::String("b2"), Value::String("beta")}).ok());
  ASSERT_TRUE((*h)->InsertValues({Value::String("h1"), Value::String("a1"),
                                  Value::String("b1")})
                  .ok());
  ASSERT_TRUE((*h)->InsertValues({Value::String("h2"), Value::String("a1"),
                                  Value::String("b2")})
                  .ok());
  ASSERT_TRUE((*c)->InsertValues({Value::String("c1"), Value::String("gamma"),
                                  Value::String("h1"), Value::String("h2")})
                  .ok());

  auto engine_or = KeywordSearchEngine::Create(&db);
  ASSERT_TRUE(engine_or.ok());
  auto engine = std::move(engine_or).ValueOrDie();

  SearchOptions options;
  options.method = SearchMethod::kMtjnt;
  options.tmax = 4;
  auto plain = engine->Search("alpha beta gamma", options);
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(plain->hits.size(), 2u);
  for (const SearchHit& hit : plain->hits) {
    ASSERT_FALSE(hit.connection.has_value());  // non-path trees
    ASSERT_EQ(hit.tree.nodes.size(), 4u);
  }
  ASSERT_EQ(plain->hits[0].tree.nodes.front(),
            plain->hits[1].tree.nodes.front());
  ASSERT_EQ(plain->hits[0].tree.nodes.back(),
            plain->hits[1].tree.nodes.back());

  options.per_endpoint_limit = 1;
  auto limited = engine->Search("alpha beta gamma", options);
  ASSERT_TRUE(limited.ok());
  // Different keyword sets, different groups: both trees survive.
  EXPECT_EQ(limited->hits.size(), 2u);
}

// Regression: with options.top_k set, kBanks used to truncate to k by
// BANKS's internal tree weight *before* the engine re-ranked with
// options.ranker, pre-dropping the hits the selected ranker prefers.
// Weight order (lightest tree first) and kMoreContext order (longest
// close connection first) disagree maximally: the old code returned the
// 1-edge tree, the over-fetching code lets the re-rank surface a longer
// connection as the top hit.
TEST_F(EngineOptionsTest, BanksOverfetchesBeforeReRanking) {
  SearchOptions options;
  options.method = SearchMethod::kBanks;
  options.top_k = 1;
  options.ranker = RankerKind::kMoreContext;
  auto result = engine_->Search("Smith XML", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->hits.size(), 1u);
  EXPECT_GT(result->hits[0].rdb_length, 1u);

  // The chosen hit is the same one an untruncated BANKS run ranks first.
  options.top_k = 0;
  auto full = engine_->Search("Smith XML", options);
  ASSERT_TRUE(full.ok());
  ASSERT_FALSE(full->hits.empty());
  EXPECT_EQ(full->hits[0].tree, result->hits[0].tree);
}

}  // namespace
}  // namespace claks
