// Copyright 2026 The claks Authors.

#include "graph/data_graph.h"

#include <gtest/gtest.h>

#include <set>

#include <memory>

#include "datasets/company_paper.h"

namespace claks {
namespace {

class DataGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    graph_ = std::make_unique<DataGraph>(dataset_.db.get());
  }

  uint32_t N(const std::string& name) {
    return graph_->NodeOf(PaperTuple(*dataset_.db, name));
  }

  CompanyPaperDataset dataset_;
  std::unique_ptr<DataGraph> graph_;
};

TEST_F(DataGraphTest, CountsNodesAndEdges) {
  // 3 departments + 3 projects + 4 works_for + 4 employees + 2 dependents.
  EXPECT_EQ(graph_->num_nodes(), 16u);
  // Edges: 3 project->dept + 4*2 works_for + 4 employee->dept +
  // 2 dependent->employee = 17.
  EXPECT_EQ(graph_->num_edges(), 17u);
}

TEST_F(DataGraphTest, NodeTupleRoundTrip) {
  // Node ids live in per-table regions with slack gaps (for delta-appended
  // rows); IsNode picks out the ids that address real tuples.
  size_t nodes_seen = 0;
  for (uint32_t node = 0; node < graph_->node_id_bound(); ++node) {
    if (!graph_->IsNode(node)) continue;
    EXPECT_EQ(graph_->NodeOf(graph_->TupleOf(node)), node);
    ++nodes_seen;
  }
  EXPECT_EQ(nodes_seen, graph_->num_nodes());
}

TEST_F(DataGraphTest, AdjacencyOfEmployeeE1) {
  // e1: works in d1, appears in w_f1.
  auto neighbors = graph_->Neighbors(N("e1"));
  ASSERT_EQ(neighbors.size(), 2u);
  std::set<uint32_t> ids;
  for (const DataAdjacency& adj : neighbors) ids.insert(adj.neighbor);
  EXPECT_TRUE(ids.count(N("d1")) > 0);
  EXPECT_TRUE(ids.count(N("w_f1")) > 0);
}

TEST_F(DataGraphTest, DirectionFlags) {
  // e1 -> d1 follows e1's FK: along_fk true from e1's perspective.
  for (const DataAdjacency& adj : graph_->Neighbors(N("e1"))) {
    if (adj.neighbor == N("d1")) {
      EXPECT_TRUE(adj.along_fk);
    }
    if (adj.neighbor == N("w_f1")) {
      EXPECT_FALSE(adj.along_fk);  // w_f1 owns the FK to e1
    }
  }
}

TEST_F(DataGraphTest, DegreeStatistics) {
  // d2 is referenced by p2, p3, e2, e4: degree 4.
  EXPECT_EQ(graph_->Degree(N("d2")), 4u);
  // d3 has nothing attached.
  EXPECT_EQ(graph_->Degree(N("d3")), 0u);
  EXPECT_GE(graph_->MaxDegree(), 4u);
  EXPECT_NEAR(graph_->AvgDegree(), 2.0 * 17 / 16, 1e-9);
}

TEST_F(DataGraphTest, ConnectedComponents) {
  // d3 and t2... t2 -> e3 so t2 connects. d3 is isolated.
  // Everything else is connected through departments/employees.
  EXPECT_EQ(graph_->CountConnectedComponents(), 2u);
}

TEST_F(DataGraphTest, EdgeAccessors) {
  ASSERT_GT(graph_->num_edges(), 0u);
  std::vector<uint32_t> ids = graph_->EdgeIds();
  ASSERT_EQ(ids.size(), graph_->num_edges());
  const DataEdge& edge = graph_->edge(ids.front());
  // First edge: first FK of the first table with FKs (PROJECT p1 -> d1).
  EXPECT_EQ(dataset_.db->TupleLabel(edge.from), "PROJECT:p1");
  EXPECT_EQ(dataset_.db->TupleLabel(edge.to), "DEPARTMENT:d1");
}

TEST_F(DataGraphTest, ToStringRendering) {
  std::string s = graph_->ToString(3);
  EXPECT_NE(s.find("16 nodes"), std::string::npos);
  EXPECT_NE(s.find("17 edges"), std::string::npos);
  EXPECT_NE(s.find("more edges"), std::string::npos);
}

TEST(DataGraphEmptyTest, EmptyDatabase) {
  Database db;
  DataGraph graph(&db);
  EXPECT_EQ(graph.num_nodes(), 0u);
  EXPECT_EQ(graph.num_edges(), 0u);
  EXPECT_EQ(graph.CountConnectedComponents(), 0u);
  EXPECT_EQ(graph.AvgDegree(), 0.0);
}

}  // namespace
}  // namespace claks
