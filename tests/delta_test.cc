// Copyright 2026 The claks Authors.
//
// Unit invariants of the incremental-mutation path (relational/delta.h,
// core/engine.h Derive, service/search_service.h Mutate):
//   - watermark diffing extracts exactly the net row delta of a batch;
//   - tombstoned rows disappear from the new generation while every older
//     pinned generation keeps answering with the old data;
//   - a derive that folds its overlays (compaction) is byte-identical to
//     an engine built from scratch over the same storage;
//   - DeltaPolicy triggers compaction exactly at its threshold, and id
//     slack exhaustion forces one even under kNeverCompact;
//   - a zero-row mutation batch publishes nothing (same snapshot pointer,
//     same version, counted as noop) — the no-op regression;
//   - an integrity-violating batch fails without publishing;
//   - a schema change falls back to the full-rebuild path;
//   - the published snapshot is immutable while a Mutate is in flight.

#include "relational/delta.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "core/engine.h"
#include "datasets/company_gen.h"
#include "relational/database.h"
#include "service/search_service.h"
#include "text/matcher.h"

namespace claks {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

GeneratedDataset MakeDataset() {
  auto generated = GenerateCompanyDataset(CompanyGenOptions::AtScale(1));
  CLAKS_CHECK(generated.ok());
  return std::move(generated).ValueOrDie();
}

void InsertDependent(Database* db, const std::string& id,
                     const std::string& name, const std::string& ssn) {
  Table* dependent = db->FindMutableTable("DEPENDENT");
  ASSERT_NE(dependent, nullptr);
  ASSERT_TRUE(dependent
                  ->InsertValues({Value::String(id), Value::String(name),
                                  Value::String(ssn)})
                  .ok());
}

void InsertEmployee(Database* db, const std::string& ssn,
                    const std::string& dept) {
  Table* employees = db->FindMutableTable("EMPLOYEE");
  ASSERT_NE(employees, nullptr);
  ASSERT_TRUE(employees
                  ->InsertValues({Value::String(ssn), Value::String("Zavala"),
                                  Value::String("Quill"),
                                  Value::String(dept)})
                  .ok());
}

void DeleteByPk(Database* db, const std::string& table,
                const std::string& id) {
  Table* tab = db->FindMutableTable(table);
  ASSERT_NE(tab, nullptr);
  ASSERT_TRUE(tab->DeleteByPrimaryKey({Value::String(id)}).ok());
}

/// Total tuples matching one keyword — id-free visibility probe.
size_t CountMatches(const KeywordSearchEngine& engine,
                    const std::string& word) {
  auto parsed = ParseKeywordQuery(word, engine.index().tokenizer());
  auto matches = MatchKeywords(engine.index(), parsed);
  size_t count = 0;
  for (const KeywordMatches& km : matches) count += km.matches.size();
  return count;
}

/// One engine generation: the database it reads plus the warmed engine.
struct Generation {
  std::unique_ptr<Database> db;
  std::unique_ptr<KeywordSearchEngine> engine;
};

Generation BaseGeneration(GeneratedDataset* dataset) {
  Generation gen;
  gen.db = std::move(dataset->db);
  auto engine = KeywordSearchEngine::Create(gen.db.get(), dataset->er_schema,
                                            dataset->mapping);
  CLAKS_CHECK(engine.ok());
  gen.engine = std::move(engine).ValueOrDie();
  return gen;
}

/// Clone + watermark + mutate + diff + Derive, the exact Mutate pipeline.
Generation DeriveGeneration(const Generation& prev,
                            const std::function<void(Database*)>& mutate,
                            const DeltaPolicy& policy,
                            bool* compacted = nullptr) {
  Generation next;
  next.db = prev.db->Clone();
  DatabaseWatermark watermark = TakeWatermark(*next.db);
  mutate(next.db.get());
  DatabaseDelta delta = ComputeDelta(watermark, *next.db);
  auto derived = KeywordSearchEngine::Derive(*prev.engine, next.db.get(),
                                             delta, policy, compacted);
  CLAKS_CHECK(derived.ok());
  next.engine = std::move(derived).ValueOrDie();
  return next;
}

// ---------------------------------------------------------------------------
// Watermark / delta extraction
// ---------------------------------------------------------------------------

TEST(DeltaExtractionTest, ComputesNetRowDelta) {
  GeneratedDataset dataset = MakeDataset();
  Database* db = dataset.db.get();
  DatabaseWatermark watermark = TakeWatermark(*db);

  Table* dependent = db->FindMutableTable("DEPENDENT");
  ASSERT_NE(dependent, nullptr);
  size_t first_slot = dependent->num_rows();
  InsertDependent(db, "tx1", "alpha", "e1");
  InsertDependent(db, "tx2", "beta", "e1");

  DatabaseDelta delta = ComputeDelta(watermark, *db);
  EXPECT_FALSE(delta.empty());
  EXPECT_FALSE(delta.schema_changed);
  ASSERT_EQ(delta.inserts.size(), 2u);
  EXPECT_TRUE(delta.deletes.empty());
  EXPECT_EQ(delta.num_ops(), 2u);
  auto dep_index = db->TableIndex("DEPENDENT");
  ASSERT_TRUE(dep_index.has_value());
  EXPECT_EQ(delta.inserts[0].table, *dep_index);
  EXPECT_EQ(delta.inserts[0].row, first_slot);
  EXPECT_EQ(delta.inserts[1].row, first_slot + 1);
}

TEST(DeltaExtractionTest, InsertThenDeleteInOneBatchCancels) {
  GeneratedDataset dataset = MakeDataset();
  Database* db = dataset.db.get();
  DatabaseWatermark watermark = TakeWatermark(*db);
  InsertDependent(db, "tx1", "alpha", "e1");
  DeleteByPk(db, "DEPENDENT", "tx1");
  // The row came and went inside the batch: net change is nothing.
  DatabaseDelta delta = ComputeDelta(watermark, *db);
  EXPECT_TRUE(delta.inserts.empty());
  EXPECT_TRUE(delta.deletes.empty());
  EXPECT_TRUE(delta.empty());
}

TEST(DeltaExtractionTest, DeleteOfPreexistingRowIsListed) {
  GeneratedDataset dataset = MakeDataset();
  Database* db = dataset.db.get();
  InsertDependent(db, "tx1", "alpha", "e1");

  DatabaseWatermark watermark = TakeWatermark(*db);
  DeleteByPk(db, "DEPENDENT", "tx1");
  DatabaseDelta delta = ComputeDelta(watermark, *db);
  EXPECT_TRUE(delta.inserts.empty());
  ASSERT_EQ(delta.deletes.size(), 1u);
  EXPECT_TRUE(delta.empty() == false);
}

// ---------------------------------------------------------------------------
// Tombstone visibility across generations
// ---------------------------------------------------------------------------

TEST(DeltaVisibilityTest, OldGenerationsKeepAnsweringOldData) {
  GeneratedDataset dataset = MakeDataset();
  Generation gen0 = BaseGeneration(&dataset);
  EXPECT_EQ(CountMatches(*gen0.engine, "zebrawood"), 0u);

  Generation gen1 = DeriveGeneration(
      gen0,
      [](Database* db) { InsertDependent(db, "t9001", "zebrawood", "e1"); },
      DeltaPolicy{DeltaPolicy::Mode::kNeverCompact});
  EXPECT_EQ(CountMatches(*gen1.engine, "zebrawood"), 1u);
  // The previous generation saw nothing change.
  EXPECT_EQ(CountMatches(*gen0.engine, "zebrawood"), 0u);

  Generation gen2 = DeriveGeneration(
      gen1, [](Database* db) { DeleteByPk(db, "DEPENDENT", "t9001"); },
      DeltaPolicy{DeltaPolicy::Mode::kNeverCompact});
  // Tombstoned away in gen2; gen1 still answers with the old row.
  EXPECT_EQ(CountMatches(*gen2.engine, "zebrawood"), 0u);
  EXPECT_EQ(CountMatches(*gen1.engine, "zebrawood"), 1u);

  // The tombstoned slot keeps its values (delta un-indexing and FK
  // un-linking re-read them); only visibility changes.
  const Table* dependent = gen2.db->FindTable("DEPENDENT");
  ASSERT_NE(dependent, nullptr);
  bool found_tombstone = false;
  for (size_t r = 0; r < dependent->num_rows(); ++r) {
    if (!dependent->IsDeleted(r)) continue;
    if (dependent->row(r)[0].AsString() == "t9001") {
      found_tombstone = true;
      EXPECT_EQ(dependent->row(r)[1].AsString(), "zebrawood");
    }
  }
  EXPECT_TRUE(found_tombstone);
}

// ---------------------------------------------------------------------------
// Compaction == from-scratch rebuild
// ---------------------------------------------------------------------------

/// Byte-level equality of two warmed engines over databases with identical
/// slot layout: same graph ids, same adjacency, same edges, same index
/// stats, same instance statistics.
void ExpectEnginesIdentical(const KeywordSearchEngine& a,
                            const KeywordSearchEngine& b) {
  const DataGraph& ga = a.data_graph();
  const DataGraph& gb = b.data_graph();
  ASSERT_EQ(ga.num_nodes(), gb.num_nodes());
  ASSERT_EQ(ga.num_edges(), gb.num_edges());
  ASSERT_EQ(ga.node_id_bound(), gb.node_id_bound());
  EXPECT_EQ(ga.EdgeIds(), gb.EdgeIds());
  for (uint32_t node = 0; node < ga.node_id_bound(); ++node) {
    ASSERT_EQ(ga.IsNode(node), gb.IsNode(node)) << "node " << node;
    auto na = ga.Neighbors(node);
    auto nb = gb.Neighbors(node);
    ASSERT_EQ(na.size(), nb.size()) << "node " << node;
    for (size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].edge_index, nb[i].edge_index);
      EXPECT_EQ(na[i].neighbor, nb[i].neighbor);
      EXPECT_EQ(na[i].along_fk, nb[i].along_fk);
    }
  }
  for (uint32_t e : ga.EdgeIds()) {
    const DataEdge& ea = ga.edge(e);
    const DataEdge& eb = gb.edge(e);
    EXPECT_EQ(ea.from, eb.from);
    EXPECT_EQ(ea.to, eb.to);
    EXPECT_EQ(ea.fk_index, eb.fk_index);
  }
  EXPECT_EQ(a.index().vocabulary_size(), b.index().vocabulary_size());
  EXPECT_EQ(a.index().stats().total_documents,
            b.index().stats().total_documents);
  EXPECT_EQ(a.index().stats().total_tokens, b.index().stats().total_tokens);
  EXPECT_DOUBLE_EQ(a.index().stats().avg_document_length,
                   b.index().stats().avg_document_length);
  EXPECT_EQ(a.statistics().ToString(), b.statistics().ToString());
}

TEST(DeltaCompactionTest, CompactedDeriveEqualsFromScratchRebuild) {
  GeneratedDataset dataset = MakeDataset();
  ERSchema er_schema = dataset.er_schema;
  ErRelationalMapping mapping = dataset.mapping;
  Generation gen0 = BaseGeneration(&dataset);

  bool compacted = false;
  Generation gen1 = DeriveGeneration(
      gen0,
      [](Database* db) {
        InsertEmployee(db, "e9001", "d1");
        InsertDependent(db, "t9001", "zebrawood", "e9001");
        InsertDependent(db, "t9002", "marblecake", "e1");
        DeleteByPk(db, "DEPENDENT", "t9002");  // same-batch churn
        Table* works_on = db->FindMutableTable("WORKS_ON");
        ASSERT_NE(works_on, nullptr);
        ASSERT_TRUE(works_on
                        ->InsertValues({Value::String("p1"),
                                        Value::String("e9001"),
                                        Value::Int64(12)})
                        .ok());
      },
      DeltaPolicy{DeltaPolicy::Mode::kAlwaysCompact}, &compacted);
  EXPECT_TRUE(compacted);
  EXPECT_EQ(gen1.engine->overlay_ops(), 0u);

  // From scratch over a clone of the very same storage: identical bytes.
  std::unique_ptr<Database> rebuilt_db = gen1.db->Clone();
  auto rebuilt =
      KeywordSearchEngine::Create(rebuilt_db.get(), er_schema, mapping);
  ASSERT_TRUE(rebuilt.ok());
  ExpectEnginesIdentical(*gen1.engine, **rebuilt);
}

TEST(DeltaCompactionTest, UncompactedDeriveMatchesRebuildOnContent) {
  // Without compaction the overlays stay; statistics and index stats must
  // still agree exactly with a cold rebuild over the same storage.
  GeneratedDataset dataset = MakeDataset();
  ERSchema er_schema = dataset.er_schema;
  ErRelationalMapping mapping = dataset.mapping;
  Generation gen0 = BaseGeneration(&dataset);

  bool compacted = true;
  Generation gen1 = DeriveGeneration(
      gen0,
      [](Database* db) {
        InsertEmployee(db, "e9001", "d2");
        InsertDependent(db, "t9001", "zebrawood", "e9001");
      },
      DeltaPolicy{DeltaPolicy::Mode::kNeverCompact}, &compacted);
  EXPECT_FALSE(compacted);
  EXPECT_EQ(gen1.engine->overlay_ops(), 2u);

  std::unique_ptr<Database> rebuilt_db = gen1.db->Clone();
  auto rebuilt =
      KeywordSearchEngine::Create(rebuilt_db.get(), er_schema, mapping);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(gen1.engine->index().stats().total_documents,
            (*rebuilt)->index().stats().total_documents);
  EXPECT_EQ(gen1.engine->index().stats().total_tokens,
            (*rebuilt)->index().stats().total_tokens);
  EXPECT_EQ(gen1.engine->statistics().ToString(),
            (*rebuilt)->statistics().ToString());
  EXPECT_EQ(CountMatches(*gen1.engine, "zebrawood"),
            CountMatches(**rebuilt, "zebrawood"));
}

// ---------------------------------------------------------------------------
// DeltaPolicy thresholds
// ---------------------------------------------------------------------------

TEST(DeltaPolicyTest, NeverCompactAccumulatesOverlayOps) {
  GeneratedDataset dataset = MakeDataset();
  Generation gen0 = BaseGeneration(&dataset);
  DeltaPolicy never{DeltaPolicy::Mode::kNeverCompact};

  std::vector<Generation> chain;
  chain.push_back(DeriveGeneration(
      gen0,
      [](Database* db) { InsertDependent(db, "ta1", "alpha", "e1"); },
      never));
  EXPECT_EQ(chain.back().engine->overlay_ops(), 1u);
  chain.push_back(DeriveGeneration(
      chain.back(),
      [](Database* db) { InsertDependent(db, "ta2", "beta", "e1"); },
      never));
  EXPECT_EQ(chain.back().engine->overlay_ops(), 2u);
  chain.push_back(DeriveGeneration(
      chain.back(), [](Database* db) { DeleteByPk(db, "DEPENDENT", "ta1"); },
      never));
  EXPECT_EQ(chain.back().engine->overlay_ops(), 3u);
}

TEST(DeltaPolicyTest, AutoCompactsExactlyAtThreshold) {
  GeneratedDataset dataset = MakeDataset();
  Generation gen0 = BaseGeneration(&dataset);
  // fraction 0: the threshold is exactly min_ops accumulated operations.
  DeltaPolicy policy;
  policy.mode = DeltaPolicy::Mode::kAuto;
  policy.min_ops = 3;
  policy.fraction = 0.0;

  bool compacted = true;
  Generation gen1 = DeriveGeneration(
      gen0,
      [](Database* db) { InsertDependent(db, "ta1", "alpha", "e1"); },
      policy, &compacted);
  EXPECT_FALSE(compacted);  // 1 < 3
  Generation gen2 = DeriveGeneration(
      gen1,
      [](Database* db) { InsertDependent(db, "ta2", "beta", "e1"); },
      policy, &compacted);
  EXPECT_FALSE(compacted);  // 2 < 3
  Generation gen3 = DeriveGeneration(
      gen2,
      [](Database* db) { InsertDependent(db, "ta3", "gamma", "e1"); },
      policy, &compacted);
  EXPECT_TRUE(compacted);  // 3 >= 3: overlays fold
  EXPECT_EQ(gen3.engine->overlay_ops(), 0u);
}

TEST(DeltaPolicyTest, SlackExhaustionForcesCompaction) {
  GeneratedDataset dataset = MakeDataset();
  Generation gen0 = BaseGeneration(&dataset);
  // One batch appending far past DEPENDENT's id slack: the graph cannot
  // place the new rows in its reserved region and reports the derive
  // impossible, which must force a fold even under kNeverCompact.
  bool compacted = false;
  Generation gen1 = DeriveGeneration(
      gen0,
      [](Database* db) {
        for (int i = 0; i < 200; ++i) {
          InsertDependent(db, "slack" + std::to_string(i), "filler", "e1");
        }
      },
      DeltaPolicy{DeltaPolicy::Mode::kNeverCompact}, &compacted);
  EXPECT_TRUE(compacted);
  EXPECT_EQ(gen1.engine->overlay_ops(), 0u);
  EXPECT_EQ(CountMatches(*gen1.engine, "filler"), 200u);
}

// ---------------------------------------------------------------------------
// Service-level Mutate invariants
// ---------------------------------------------------------------------------

std::unique_ptr<SearchService> MakeService(const DeltaPolicy& policy) {
  GeneratedDataset dataset = MakeDataset();
  ServiceOptions options;
  options.num_threads = 2;
  options.cache_capacity = 0;
  options.delta_policy = policy;
  auto service = SearchService::Create(std::move(dataset.db),
                                       dataset.er_schema, dataset.mapping,
                                       options);
  CLAKS_CHECK(service.ok());
  return std::move(service).ValueOrDie();
}

TEST(ServiceMutateTest, NoopMutationPublishesNothing) {
  auto service = MakeService(DeltaPolicy{});
  std::shared_ptr<const EngineSnapshot> before = service->snapshot();

  // Batch 1: literally nothing. Batch 2: insert + delete of the same row
  // (net-zero). Neither may build or publish anything.
  ASSERT_TRUE(service->Mutate([](Database*) { return Status::OK(); }).ok());
  ASSERT_TRUE(service
                  ->Mutate([](Database* db) {
                    InsertDependent(db, "tmp1", "ephemeral", "e1");
                    DeleteByPk(db, "DEPENDENT", "tmp1");
                    return Status::OK();
                  })
                  .ok());

  std::shared_ptr<const EngineSnapshot> after = service->snapshot();
  EXPECT_EQ(before.get(), after.get());  // the exact same generation
  EXPECT_EQ(before->version, after->version);
  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.noop_mutations, 2u);
  EXPECT_EQ(stats.delta_mutations, 0u);
  EXPECT_EQ(stats.rebuild_mutations, 0u);
  EXPECT_EQ(stats.compactions, 0u);
}

TEST(ServiceMutateTest, RowBatchPublishesDeltaDerivedSnapshot) {
  auto service = MakeService(DeltaPolicy{DeltaPolicy::Mode::kNeverCompact});
  uint64_t version = service->snapshot()->version;
  ASSERT_TRUE(service
                  ->Mutate([](Database* db) {
                    InsertDependent(db, "t9001", "zebrawood", "e1");
                    return Status::OK();
                  })
                  .ok());
  std::shared_ptr<const EngineSnapshot> snapshot = service->snapshot();
  EXPECT_EQ(snapshot->version, version + 1);
  EXPECT_EQ(CountMatches(*snapshot->engine, "zebrawood"), 1u);
  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.delta_mutations, 1u);
  EXPECT_EQ(stats.rebuild_mutations, 0u);
}

TEST(ServiceMutateTest, IntegrityViolationPublishesNothing) {
  auto service = MakeService(DeltaPolicy{});
  std::shared_ptr<const EngineSnapshot> before = service->snapshot();

  // Dangling FK: the batch must fail with IntegrityViolation and leave
  // the published snapshot untouched.
  Status dangling = service->Mutate([](Database* db) {
    InsertEmployee(db, "e9001", "no-such-department");
    return Status::OK();
  });
  EXPECT_FALSE(dangling.ok());
  EXPECT_TRUE(dangling.IsIntegrityViolation());

  // Deleting a still-referenced row (d1 has employees/projects): same.
  Status restricted = service->Mutate([](Database* db) {
    DeleteByPk(db, "DEPARTMENT", "d1");
    return Status::OK();
  });
  EXPECT_FALSE(restricted.ok());
  EXPECT_TRUE(restricted.IsIntegrityViolation());

  std::shared_ptr<const EngineSnapshot> after = service->snapshot();
  EXPECT_EQ(before.get(), after.get());
  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.delta_mutations, 0u);
  EXPECT_EQ(stats.rebuild_mutations, 0u);
}

TEST(ServiceMutateTest, SchemaChangeFallsBackToRebuild) {
  auto service = MakeService(DeltaPolicy{});
  uint64_t version = service->snapshot()->version;
  ASSERT_TRUE(service
                  ->Mutate([](Database* db) {
                    return db
                        ->AddTable(TableSchema(
                            "AUDIT_LOG",
                            {{"ID", ValueType::kString},
                             {"NOTE", ValueType::kString}},
                            {"ID"}))
                        .status();
                  })
                  .ok());
  EXPECT_EQ(service->snapshot()->version, version + 1);
  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.rebuild_mutations, 1u);
  EXPECT_EQ(stats.delta_mutations, 0u);
}

TEST(ServiceMutateTest, CompactionCounterTracksPolicy) {
  DeltaPolicy policy;
  policy.mode = DeltaPolicy::Mode::kAuto;
  policy.min_ops = 2;
  policy.fraction = 0.0;
  auto service = MakeService(policy);
  auto one_insert = [](int i) {
    return [i](Database* db) {
      InsertDependent(db, "tc" + std::to_string(i), "countertest", "e1");
      return Status::OK();
    };
  };
  ASSERT_TRUE(service->Mutate(one_insert(0)).ok());  // 1 op: no fold
  EXPECT_EQ(service->stats().compactions, 0u);
  ASSERT_TRUE(service->Mutate(one_insert(1)).ok());  // 2 ops: fold
  EXPECT_EQ(service->stats().compactions, 1u);
  ASSERT_TRUE(service->Mutate(one_insert(2)).ok());  // counter restarts
  EXPECT_EQ(service->stats().compactions, 1u);
  EXPECT_EQ(service->stats().delta_mutations, 3u);
}

TEST(ServiceMutateTest, SnapshotImmutableWhileMutateInFlight) {
  auto service = MakeService(DeltaPolicy{});
  std::shared_ptr<const EngineSnapshot> before = service->snapshot();

  std::mutex mutex;
  std::condition_variable cv;
  bool mutation_started = false;
  bool release_mutation = false;

  std::thread writer([&] {
    Status status = service->Mutate([&](Database* db) {
      InsertDependent(db, "t9001", "zebrawood", "e1");
      {
        std::unique_lock<std::mutex> lock(mutex);
        mutation_started = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release_mutation; });
      }
      return Status::OK();
    });
    CLAKS_CHECK(status.ok());
  });

  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return mutation_started; });
  }
  // Mid-mutation: the published snapshot is still the old generation and
  // still answers with the old data.
  std::shared_ptr<const EngineSnapshot> during = service->snapshot();
  EXPECT_EQ(before.get(), during.get());
  EXPECT_EQ(CountMatches(*during->engine, "zebrawood"), 0u);

  {
    std::unique_lock<std::mutex> lock(mutex);
    release_mutation = true;
    cv.notify_all();
  }
  writer.join();

  std::shared_ptr<const EngineSnapshot> after = service->snapshot();
  EXPECT_EQ(after->version, before->version + 1);
  EXPECT_EQ(CountMatches(*after->engine, "zebrawood"), 1u);
  // And the pinned old generation still answers the old way.
  EXPECT_EQ(CountMatches(*before->engine, "zebrawood"), 0u);
}

}  // namespace
}  // namespace claks
