// Copyright 2026 The claks Authors.
//
// Unit tests for the metrics registry: counter/gauge/histogram exactness
// serially and under thread contention, the log-bucket percentile bound
// (for a true value v the estimate e satisfies v <= e < 2v), the
// recording kill switch, labeled families, snapshot lookups and the
// RenderText/RenderJson expositions (golden outputs on a small
// registry). Tests use their own MetricsRegistry instance so the
// process-wide Default() registry never leaks state between tests.

#include "observability/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace claks {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  // Every test must leave the process-wide recording switch on: it gates
  // all registries, including Default()'s production metrics.
  void TearDown() override { MetricsRegistry::SetRecording(true); }

  MetricsRegistry registry_;
};

TEST_F(MetricsTest, CounterCountsExactlySerial) {
  Counter& counter = registry_.GetCounter("claks_test_a_total", "A");
  EXPECT_EQ(counter.Value(), 0u);
  counter.Inc();
  counter.Inc(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST_F(MetricsTest, CounterSumsAcrossContendingThreads) {
  Counter& counter = registry_.GetCounter("claks_test_a_total", "A");
  constexpr size_t kThreads = 8;
  constexpr size_t kIncsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (size_t i = 0; i < kIncsPerThread; ++i) counter.Inc();
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Exactness, not approximation: every Inc is a relaxed add to exactly
  // one slot and Value() sums the slots.
  EXPECT_EQ(counter.Value(), kThreads * kIncsPerThread);
}

TEST_F(MetricsTest, GaugeSetAddSub) {
  Gauge& gauge = registry_.GetGauge("claks_test_b_depth", "B");
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Set(7);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Add(5);
  gauge.Sub(13);
  EXPECT_EQ(gauge.Value(), -1);
}

TEST_F(MetricsTest, RecordingOffDropsEveryWrite) {
  Counter& counter = registry_.GetCounter("claks_test_a_total", "A");
  Gauge& gauge = registry_.GetGauge("claks_test_b_depth", "B");
  Histogram& histogram = registry_.GetHistogram("claks_test_c_us", "C");

  MetricsRegistry::SetRecording(false);
  EXPECT_FALSE(MetricsRegistry::recording());
  counter.Inc(100);
  gauge.Set(100);
  histogram.Observe(100);

  MetricsRegistry::SetRecording(true);
  EXPECT_TRUE(MetricsRegistry::recording());
  counter.Inc();
  gauge.Add(2);
  histogram.Observe(3);

  EXPECT_EQ(counter.Value(), 1u);
  EXPECT_EQ(gauge.Value(), 2);
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 3u);
  EXPECT_EQ(snap.max, 3u);
}

TEST_F(MetricsTest, GetReturnsSameObjectForSameName) {
  Counter& first = registry_.GetCounter("claks_test_a_total", "A");
  Counter& again = registry_.GetCounter("claks_test_a_total", "A");
  EXPECT_EQ(&first, &again);
  // Distinct names are distinct objects (and registries are isolated).
  Counter& other = registry_.GetCounter("claks_test_d_total", "D");
  EXPECT_NE(&first, &other);
  MetricsRegistry second;
  EXPECT_NE(&second.GetCounter("claks_test_a_total", "A"), &first);
}

TEST_F(MetricsTest, HistogramCountSumMaxExact) {
  Histogram& histogram = registry_.GetHistogram("claks_test_c_us", "C");
  for (uint64_t value : {0u, 1u, 5u, 5u, 1000u}) histogram.Observe(value);
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 1011u);
  EXPECT_EQ(snap.max, 1000u);
}

TEST_F(MetricsTest, HistogramBucketPlacementIsBitWidth) {
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(1023), 10u);
  EXPECT_EQ(Histogram::BucketOf(1024), 11u);
  EXPECT_EQ(Histogram::BucketOf(~uint64_t{0}), 64u);

  Histogram& histogram = registry_.GetHistogram("claks_test_c_us", "C");
  histogram.Observe(0);
  histogram.Observe(3);
  histogram.Observe(1024);
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[11], 1u);
}

TEST_F(MetricsTest, PercentileWithinLogBucketBoundOfSortedReference) {
  Histogram& histogram = registry_.GetHistogram("claks_test_c_us", "C");
  // Deterministic pseudo-random latencies (Knuth multiplicative hash).
  std::vector<uint64_t> values;
  values.reserve(1000);
  for (uint64_t i = 0; i < 1000; ++i) {
    values.push_back((i * 2654435761u) % 100000);
  }
  for (uint64_t value : values) histogram.Observe(value);
  std::sort(values.begin(), values.end());

  HistogramSnapshot snap = histogram.Snapshot();
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    // Same rank convention as the implementation: 1-based ceil(q * n).
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(values.size())));
    if (rank == 0) rank = 1;
    uint64_t reference = values[rank - 1];
    uint64_t estimate = snap.Percentile(q);
    // The log-2 bucket bound: v <= e < 2v, never above the observed max.
    EXPECT_GE(estimate, reference) << "q=" << q;
    if (reference > 0) {
      EXPECT_LT(estimate, 2 * reference) << "q=" << q;
    }
    EXPECT_LE(estimate, snap.max) << "q=" << q;
  }
  EXPECT_EQ(snap.p50, snap.Percentile(0.5));
  EXPECT_EQ(snap.p90, snap.Percentile(0.9));
  EXPECT_EQ(snap.p99, snap.Percentile(0.99));
}

TEST_F(MetricsTest, HistogramConcurrentObservesKeepCountAndSum) {
  Histogram& histogram = registry_.GetHistogram("claks_test_c_us", "C");
  constexpr size_t kThreads = 8;
  constexpr size_t kObservationsPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (size_t i = 0; i < kObservationsPerThread; ++i) {
        histogram.Observe(7);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kObservationsPerThread);
  EXPECT_EQ(snap.sum, 7 * kThreads * kObservationsPerThread);
  EXPECT_EQ(snap.max, 7u);
  EXPECT_EQ(snap.p99, 7u);
}

TEST_F(MetricsTest, FamilySeriesAreStableAndSnapshotSumsThem) {
  CounterFamily& family = registry_.GetCounterFamily(
      "claks_test_q_total", "Q", {"method"});
  Counter& stream = family.With({"stream"});
  Counter& enumerate = family.With({"enumerate"});
  EXPECT_NE(&stream, &enumerate);
  EXPECT_EQ(&family.With({"stream"}), &stream);
  stream.Inc(2);
  enumerate.Inc();

  MetricsSnapshot snap = registry_.Snapshot();
  // CounterValue over a family sums every series.
  EXPECT_EQ(snap.CounterValue("claks_test_q_total"), 3u);
  size_t series_seen = 0;
  for (const MetricSeries& series : snap.series) {
    if (series.name != "claks_test_q_total") continue;
    ++series_seen;
    ASSERT_EQ(series.labels.size(), 1u);
    EXPECT_EQ(series.labels[0].first, "method");
  }
  EXPECT_EQ(series_seen, 2u);
}

TEST_F(MetricsTest, SnapshotLookupsByNameWithAbsentDefaults) {
  registry_.GetCounter("claks_test_a_total", "A").Inc(5);
  registry_.GetGauge("claks_test_b_depth", "B").Set(-3);
  registry_.GetHistogram("claks_test_c_us", "C").Observe(9);

  MetricsSnapshot snap = registry_.Snapshot();
  EXPECT_EQ(snap.CounterValue("claks_test_a_total"), 5u);
  EXPECT_EQ(snap.GaugeValue("claks_test_b_depth"), -3);
  EXPECT_EQ(snap.HistogramValue("claks_test_c_us").count, 1u);
  EXPECT_EQ(snap.HistogramValue("claks_test_c_us").sum, 9u);
  // Absent names resolve to zero values, not errors.
  EXPECT_EQ(snap.CounterValue("claks_test_missing_total"), 0u);
  EXPECT_EQ(snap.GaugeValue("claks_test_missing_depth"), 0);
  EXPECT_EQ(snap.HistogramValue("claks_test_missing_us").count, 0u);
}

TEST_F(MetricsTest, RenderTextGolden) {
  registry_.GetCounter("claks_test_a_total", "A counter").Inc(3);
  registry_.GetGauge("claks_test_b_depth", "B gauge").Set(-2);
  registry_.GetHistogram("claks_test_c_us", "C histogram").Observe(3);
  CounterFamily& family = registry_.GetCounterFamily(
      "claks_test_q_total", "Q family", {"method"});
  family.With({"stream"}).Inc(2);
  family.With({"enumerate"}).Inc(1);

  EXPECT_EQ(registry_.RenderText(),
            "# HELP claks_test_a_total A counter\n"
            "# TYPE claks_test_a_total counter\n"
            "claks_test_a_total 3\n"
            "# HELP claks_test_b_depth B gauge\n"
            "# TYPE claks_test_b_depth gauge\n"
            "claks_test_b_depth -2\n"
            "# HELP claks_test_c_us C histogram\n"
            "# TYPE claks_test_c_us summary\n"
            "claks_test_c_us{quantile=\"0.5\"} 3\n"
            "claks_test_c_us{quantile=\"0.9\"} 3\n"
            "claks_test_c_us{quantile=\"0.99\"} 3\n"
            "claks_test_c_us{quantile=\"1\"} 3\n"
            "claks_test_c_us_sum 3\n"
            "claks_test_c_us_count 1\n"
            "# HELP claks_test_q_total Q family\n"
            "# TYPE claks_test_q_total counter\n"
            "claks_test_q_total{method=\"enumerate\"} 1\n"
            "claks_test_q_total{method=\"stream\"} 2\n");
}

TEST_F(MetricsTest, RenderJsonGolden) {
  registry_.GetCounter("claks_test_a_total", "A").Inc(3);
  registry_.GetGauge("claks_test_b_depth", "B").Set(-2);

  EXPECT_EQ(registry_.RenderJson(),
            "{\"metrics\":["
            "{\"name\":\"claks_test_a_total\",\"labels\":{},"
            "\"kind\":\"counter\",\"value\":3},"
            "{\"name\":\"claks_test_b_depth\",\"labels\":{},"
            "\"kind\":\"gauge\",\"value\":-2}"
            "]}");
}

TEST(ComputeSkewTest, DefinedValuesForDegenerateInputs) {
  SkewSummary empty = ComputeSkew({});
  EXPECT_EQ(empty.max, 0u);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  EXPECT_DOUBLE_EQ(empty.ratio, 1.0);

  SkewSummary zeros = ComputeSkew({0, 0, 0});
  EXPECT_EQ(zeros.max, 0u);
  EXPECT_DOUBLE_EQ(zeros.mean, 0.0);
  EXPECT_DOUBLE_EQ(zeros.ratio, 1.0);
}

TEST(ComputeSkewTest, BalancedAndSkewedCounts) {
  SkewSummary balanced = ComputeSkew({4, 4, 4});
  EXPECT_EQ(balanced.max, 4u);
  EXPECT_DOUBLE_EQ(balanced.mean, 4.0);
  EXPECT_DOUBLE_EQ(balanced.ratio, 1.0);

  SkewSummary skewed = ComputeSkew({9, 1, 2});
  EXPECT_EQ(skewed.max, 9u);
  EXPECT_DOUBLE_EQ(skewed.mean, 4.0);
  EXPECT_DOUBLE_EQ(skewed.ratio, 2.25);
}

}  // namespace
}  // namespace claks
