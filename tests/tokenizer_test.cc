// Copyright 2026 The claks Authors.

#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace claks {
namespace {

TEST(TokenizerTest, SplitsOnNonAlnum) {
  Tokenizer tok;
  EXPECT_EQ(tok.Tokenize("DB-project: XML."),
            (std::vector<std::string>{"db", "project", "xml"}));
}

TEST(TokenizerTest, LowercasesByDefault) {
  Tokenizer tok;
  EXPECT_EQ(tok.Tokenize("Smith XML"),
            (std::vector<std::string>{"smith", "xml"}));
}

TEST(TokenizerTest, CaseSensitiveMode) {
  TokenizerOptions options;
  options.lowercase = false;
  Tokenizer tok(options);
  EXPECT_EQ(tok.Tokenize("Smith XML"),
            (std::vector<std::string>{"Smith", "XML"}));
}

TEST(TokenizerTest, KeepsDigits) {
  Tokenizer tok;
  EXPECT_EQ(tok.Tokenize("room 42b"),
            (std::vector<std::string>{"room", "42b"}));
}

TEST(TokenizerTest, EmptyAndSeparatorOnly) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("---, ..!").empty());
}

TEST(TokenizerTest, MinTokenLength) {
  TokenizerOptions options;
  options.min_token_length = 3;
  Tokenizer tok(options);
  EXPECT_EQ(tok.Tokenize("an xml db index"),
            (std::vector<std::string>{"xml", "index"}));
}

TEST(TokenizerTest, Stopwords) {
  TokenizerOptions options;
  options.stopwords = DefaultStopwords();
  Tokenizer tok(options);
  EXPECT_EQ(tok.Tokenize("The main topics of teaching are XML"),
            (std::vector<std::string>{"main", "topics", "teaching", "xml"}));
}

TEST(TokenizerTest, NormalizeToken) {
  Tokenizer tok;
  EXPECT_EQ(tok.NormalizeToken("XML."), "xml");
  EXPECT_EQ(tok.NormalizeToken("Smith"), "smith");
  EXPECT_EQ(tok.NormalizeToken("--"), "");
}

TEST(TokenizerTest, DefaultStopwordsContainCommonWords) {
  const auto& stopwords = DefaultStopwords();
  EXPECT_TRUE(stopwords.count("the") > 0);
  EXPECT_TRUE(stopwords.count("of") > 0);
  EXPECT_FALSE(stopwords.count("xml") > 0);
}

}  // namespace
}  // namespace claks
