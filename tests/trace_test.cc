// Copyright 2026 The claks Authors.
//
// Unit tests for trace spans and the bounded recorder: same-thread
// nesting, cross-thread parenting through a ThreadPool via a captured
// TraceContext, ring-buffer overwrite accounting, the Chrome trace_event
// JSON shape, and the no-recorder cost contract — with tracing off a
// span is a load and a branch, proven here by counting global operator
// new calls around a span storm (this TU replaces operator new/delete
// with counting versions for that purpose).

#include "observability/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"

namespace {

std::atomic<size_t> g_allocation_count{0};

size_t AllocationCount() {
  return g_allocation_count.load(std::memory_order_relaxed);
}

void* CountingAllocate(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

}  // namespace

void* operator new(std::size_t size) { return CountingAllocate(size); }
void* operator new[](std::size_t size) { return CountingAllocate(size); }
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace claks {
namespace {

#ifndef CLAKS_TRACING_DISABLED

const TraceEvent* FindEvent(const std::vector<TraceEvent>& events,
                            const std::string& name) {
  for (const TraceEvent& event : events) {
    if (event.name == name) return &event;
  }
  return nullptr;
}

TEST(TraceTest, NoRecorderMeansDisabledInactiveSpans) {
  ASSERT_EQ(TraceRecorder::Active(), nullptr);
  EXPECT_FALSE(TraceSpan::Enabled());
  TraceSpan span("orphan");
  EXPECT_FALSE(span.active());
  TraceContext context = TraceSpan::Capture();
  EXPECT_EQ(context.recorder, nullptr);
  TraceSpan child(context, "orphan-child");
  EXPECT_FALSE(child.active());
}

TEST(TraceTest, NestedSpansParentAutomaticallyInFinishOrder) {
  TraceRecorder recorder;
  recorder.Install();
  EXPECT_TRUE(TraceSpan::Enabled());
  {
    TraceSpan outer("outer");
    EXPECT_TRUE(outer.active());
    { TraceSpan inner("inner"); }
    // The sibling must parent under outer again: inner's close restored
    // the thread's current span.
    { TraceSpan sibling("sibling"); }
  }
  TraceRecorder::Uninstall();

  std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 3u);
  // Completed spans land in finish order.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "sibling");
  EXPECT_STREQ(events[2].name, "outer");

  const TraceEvent& inner = events[0];
  const TraceEvent& sibling = events[1];
  const TraceEvent& outer = events[2];
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_EQ(inner.parent_id, outer.span_id);
  EXPECT_EQ(sibling.parent_id, outer.span_id);
  EXPECT_NE(inner.span_id, sibling.span_id);
  // Children start no earlier than their parent and fit inside it.
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.duration_ns,
            outer.start_ns + outer.duration_ns);
}

TEST(TraceTest, CrossThreadSpansParentThroughCapturedContext) {
  TraceRecorder recorder;
  recorder.Install();
  {
    TraceSpan root("search");
    TraceContext context = TraceSpan::Capture();
    EXPECT_EQ(context.recorder, &recorder);
    ThreadPool pool(2, 8);
    for (uint64_t i = 0; i < 4; ++i) {
      pool.Submit([context, i] {
        TraceSpan task(context, "task");
        task.SetArg("shard", i);
      });
    }
    pool.Drain();
  }
  TraceRecorder::Uninstall();

  std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 5u);
  const TraceEvent* root = FindEvent(events, "search");
  ASSERT_NE(root, nullptr);
  std::vector<uint64_t> shards;
  for (const TraceEvent& event : events) {
    if (std::string(event.name) != "task") continue;
    // Parented under the consumer-side root despite running on a pool
    // worker, whose per-thread trace id differs from the root's.
    EXPECT_EQ(event.parent_id, root->span_id);
    EXPECT_NE(event.tid, root->tid);
    ASSERT_NE(event.arg_name, nullptr);
    EXPECT_STREQ(event.arg_name, "shard");
    shards.push_back(event.arg_value);
  }
  std::sort(shards.begin(), shards.end());
  EXPECT_EQ(shards, (std::vector<uint64_t>{0, 1, 2, 3}));
}

TEST(TraceTest, RingOverwritesOldestAndCountsDropped) {
  TraceRecorder recorder(/*capacity=*/4);
  recorder.Install();
  for (uint64_t i = 0; i < 7; ++i) {
    TraceSpan span("span");
    span.SetArg("i", i);
  }
  TraceRecorder::Uninstall();

  EXPECT_EQ(recorder.dropped(), 3u);
  std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 4u);
  // The oldest three were overwritten; survivors come back oldest-first.
  for (uint64_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg_value, 3 + i);
  }
}

TEST(TraceTest, SpanOpenAcrossUninstallStillRecords) {
  TraceRecorder recorder;
  recorder.Install();
  std::optional<TraceSpan> open;
  open.emplace("open");
  TraceRecorder::Uninstall();
  // New spans are inactive once tracing is off...
  {
    TraceSpan off("off");
    EXPECT_FALSE(off.active());
  }
  // ...but a span already open keeps the recorder it captured.
  open.reset();
  std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "open");
}

TEST(TraceTest, ToChromeJsonIsWellFormedTraceEventDocument) {
  TraceRecorder recorder;
  recorder.Install();
  {
    TraceSpan alpha("alpha");
    alpha.SetArg("shard", 2);
    { TraceSpan beta("beta"); }
  }
  TraceRecorder::Uninstall();

  std::string json = recorder.ToChromeJson();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"beta\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"claks\""), std::string::npos);
  EXPECT_NE(json.find("\"shard\":2"), std::string::npos);
  EXPECT_NE(json.find("\"span\":"), std::string::npos);
  EXPECT_NE(json.find("\"parent\":"), std::string::npos);
  // Balanced braces/brackets: the renderer emits no string that could
  // contain either (span names are claks-chosen literals).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

#else  // CLAKS_TRACING_DISABLED

TEST(TraceTest, DisabledBuildCompilesToInertTwins) {
  EXPECT_FALSE(TraceSpan::Enabled());
  TraceRecorder recorder;
  recorder.Install();
  {
    TraceSpan span("anything");
    EXPECT_FALSE(span.active());
    span.SetArg("shard", 1);
  }
  TraceRecorder::Uninstall();
  EXPECT_TRUE(recorder.Events().empty());
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(recorder.ToChromeJson(), "{\"traceEvents\":[]}\n");
}

#endif  // CLAKS_TRACING_DISABLED

TEST(TraceTest, UntracedSpansAllocateNothing) {
  ASSERT_EQ(TraceRecorder::Active(), nullptr);
  const size_t before = AllocationCount();
  for (uint64_t i = 0; i < 1000; ++i) {
    TraceSpan span("noop");
    span.SetArg("i", i);
    TraceContext context = TraceSpan::Capture();
    TraceSpan child(context, "noop-child");
  }
  EXPECT_EQ(AllocationCount(), before);
}

}  // namespace
}  // namespace claks
