// Copyright 2026 The claks Authors.

#include "relational/tuple.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace claks {
namespace {

TEST(TupleIdTest, EqualityAndOrdering) {
  TupleId a{1, 2};
  TupleId b{1, 2};
  TupleId c{1, 3};
  TupleId d{2, 0};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_LT(c, d);
  EXPECT_FALSE(d < a);
}

TEST(TupleIdTest, PackUnpackRoundTrip) {
  for (TupleId id : {TupleId{0, 0}, TupleId{1, 2}, TupleId{0xffffffffu, 7},
                     TupleId{3, 0xffffffffu}}) {
    EXPECT_EQ(TupleId::Unpack(id.Pack()), id);
  }
}

TEST(TupleIdTest, PackIsInjectiveAcrossTables) {
  EXPECT_NE((TupleId{0, 1}).Pack(), (TupleId{1, 0}).Pack());
}

TEST(TupleIdTest, HashUsableInUnorderedSet) {
  std::unordered_set<TupleId, TupleIdHash> set;
  set.insert(TupleId{0, 0});
  set.insert(TupleId{0, 0});
  set.insert(TupleId{0, 1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(TupleIdTest, ToString) {
  EXPECT_EQ((TupleId{2, 5}).ToString(), "t(2,5)");
}

TEST(MakeKeyTest, DistinctValuesDistinctKeys) {
  Row a{Value::String("x"), Value::Int64(1)};
  Row b{Value::String("x"), Value::Int64(2)};
  EXPECT_NE(MakeKey(a, {0, 1}), MakeKey(b, {0, 1}));
}

TEST(MakeKeyTest, NoConcatenationCollisions) {
  // "ab" + "c" must not collide with "a" + "bc".
  Row a{Value::String("ab"), Value::String("c")};
  Row b{Value::String("a"), Value::String("bc")};
  EXPECT_NE(MakeKey(a, {0, 1}), MakeKey(b, {0, 1}));
}

TEST(MakeKeyTest, TypeTagged) {
  // String "1" differs from Int64 1.
  Row a{Value::String("1")};
  Row b{Value::Int64(1)};
  EXPECT_NE(MakeKey(a, {0}), MakeKey(b, {0}));
}

TEST(MakeKeyTest, SubsetOfColumns) {
  Row row{Value::String("x"), Value::String("y"), Value::String("z")};
  EXPECT_EQ(MakeKey(row, {0, 2}),
            MakeKey({Value::String("x"), Value::Null(), Value::String("z")},
                    {0, 2}));
  EXPECT_NE(MakeKey(row, {0}), MakeKey(row, {1}));
}

TEST(MakeKeyTest, OrderMatters) {
  Row row{Value::String("x"), Value::String("y")};
  EXPECT_NE(MakeKey(row, {0, 1}), MakeKey(row, {1, 0}));
}

}  // namespace
}  // namespace claks
