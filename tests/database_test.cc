// Copyright 2026 The claks Authors.

#include "relational/database.h"

#include <gtest/gtest.h>

namespace claks {
namespace {

// Two-table toy: B references A.
void BuildToy(Database* db, bool dangling = false) {
  auto a = db->AddTable(TableSchema(
      "A", {{"ID", ValueType::kString}, {"T", ValueType::kString}},
      {"ID"}));
  ASSERT_TRUE(a.ok());
  auto b = db->AddTable(TableSchema(
      "B",
      {{"ID", ValueType::kString}, {"A_ID", ValueType::kString, true}},
      {"ID"}, {{"fk_a", {"A_ID"}, "A", {"ID"}}}));
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(
      (*a)->InsertValues({Value::String("a1"), Value::String("x")}).ok());
  ASSERT_TRUE(
      (*a)->InsertValues({Value::String("a2"), Value::String("y")}).ok());
  ASSERT_TRUE(
      (*b)->InsertValues({Value::String("b1"), Value::String("a1")}).ok());
  ASSERT_TRUE(
      (*b)->InsertValues({Value::String("b2"), Value::Null()}).ok());
  if (dangling) {
    ASSERT_TRUE(
        (*b)->InsertValues({Value::String("b3"), Value::String("zzz")})
            .ok());
  }
}

TEST(DatabaseTest, AddAndLookupTables) {
  Database db;
  BuildToy(&db);
  EXPECT_EQ(db.num_tables(), 2u);
  EXPECT_EQ(db.TableIndex("A"), 0u);
  EXPECT_EQ(db.TableIndex("B"), 1u);
  EXPECT_FALSE(db.TableIndex("C").has_value());
  EXPECT_NE(db.FindTable("A"), nullptr);
  EXPECT_EQ(db.FindTable("C"), nullptr);
  EXPECT_TRUE(db.RequireTable("C").status().IsNotFound());
}

TEST(DatabaseTest, RejectsDuplicateTable) {
  Database db;
  ASSERT_TRUE(
      db.AddTable(TableSchema("A", {{"ID", ValueType::kString}}, {"ID"}))
          .ok());
  EXPECT_TRUE(
      db.AddTable(TableSchema("A", {{"ID", ValueType::kString}}, {"ID"}))
          .status()
          .IsAlreadyExists());
}

TEST(DatabaseTest, RowAndSchemaOf) {
  Database db;
  BuildToy(&db);
  TupleId id{0, 1};
  EXPECT_EQ(db.RowOf(id)[0].AsString(), "a2");
  EXPECT_EQ(db.SchemaOf(id).name(), "A");
  EXPECT_EQ(db.TotalRows(), 4u);
}

TEST(DatabaseTest, IntegrityOkWithNullFk) {
  Database db;
  BuildToy(&db);
  EXPECT_TRUE(db.CheckReferentialIntegrity().ok());
}

TEST(DatabaseTest, IntegrityCatchesDanglingFk) {
  Database db;
  BuildToy(&db, /*dangling=*/true);
  EXPECT_TRUE(db.CheckReferentialIntegrity().IsIntegrityViolation());
}

TEST(DatabaseTest, IntegrityRequiresPkReference) {
  Database db;
  ASSERT_TRUE(db.AddTable(TableSchema("A",
                                      {{"ID", ValueType::kString},
                                       {"ALT", ValueType::kString}},
                                      {"ID"}))
                  .ok());
  ASSERT_TRUE(db.AddTable(TableSchema(
                              "B",
                              {{"ID", ValueType::kString},
                               {"A_ALT", ValueType::kString}},
                              {"ID"}, {{"fk", {"A_ALT"}, "A", {"ALT"}}}))
                  .ok());
  EXPECT_TRUE(db.CheckReferentialIntegrity().IsIntegrityViolation());
}

TEST(DatabaseTest, ResolveFkEdges) {
  Database db;
  BuildToy(&db);
  auto edges = db.ResolveAllFkEdges();
  // Only b1 -> a1 (b2 has a NULL FK).
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, (TupleId{1, 0}));
  EXPECT_EQ(edges[0].to, (TupleId{0, 0}));
  EXPECT_EQ(edges[0].fk_index, 0u);
}

TEST(DatabaseTest, ResolveFkEdgesFromSingleTuple) {
  Database db;
  BuildToy(&db);
  EXPECT_EQ(db.ResolveFkEdgesFrom(TupleId{1, 0}).size(), 1u);
  EXPECT_TRUE(db.ResolveFkEdgesFrom(TupleId{1, 1}).empty());  // NULL FK
  EXPECT_TRUE(db.ResolveFkEdgesFrom(TupleId{0, 0}).empty());  // no FK
}

TEST(DatabaseTest, TupleLabelAndSummary) {
  Database db;
  BuildToy(&db);
  EXPECT_EQ(db.TupleLabel(TupleId{0, 0}), "A:a1");
  std::string summary = db.TupleSummary(TupleId{0, 0});
  EXPECT_NE(summary.find("ID=a1"), std::string::npos);
  EXPECT_NE(summary.find("T=x"), std::string::npos);
}

}  // namespace
}  // namespace claks
