// Copyright 2026 The claks Authors.
//
// Tests for ER -> relational generation and relational -> ER reverse
// engineering, including the round trip.

#include <gtest/gtest.h>

#include "datasets/bibliography.h"
#include "datasets/company_gen.h"
#include "datasets/company_paper.h"
#include "er/er_to_relational.h"
#include "er/relational_to_er.h"

namespace claks {
namespace {

TEST(ErToRelationalTest, EntityTablesComeFirst) {
  auto generated = GenerateRelationalSchema(CompanyPaperErSchema());
  ASSERT_TRUE(generated.ok());
  // 4 entity tables + 1 middle relation (WORKS_ON).
  ASSERT_EQ(generated->tables.size(), 5u);
  EXPECT_EQ(generated->tables[0].name(), "DEPARTMENT");
  EXPECT_EQ(generated->tables[4].name(), "WORKS_ON");
  EXPECT_TRUE(generated->mapping.IsMiddleRelation("WORKS_ON"));
  EXPECT_FALSE(generated->mapping.IsMiddleRelation("EMPLOYEE"));
}

TEST(ErToRelationalTest, OneToManyAddsFkOnManySide) {
  auto generated = GenerateRelationalSchema(CompanyPaperErSchema());
  ASSERT_TRUE(generated.ok());
  const TableSchema* employee = nullptr;
  for (const auto& t : generated->tables) {
    if (t.name() == "EMPLOYEE") employee = &t;
  }
  ASSERT_NE(employee, nullptr);
  ASSERT_EQ(employee->foreign_keys().size(), 1u);
  EXPECT_EQ(employee->foreign_keys()[0].referenced_table, "DEPARTMENT");
  // Generated FK column is typed like the referenced key and non-searchable.
  auto idx = employee->AttributeIndex(
      employee->foreign_keys()[0].local_attributes[0]);
  ASSERT_TRUE(idx.has_value());
  EXPECT_FALSE(employee->attribute(*idx).searchable);
}

TEST(ErToRelationalTest, MiddleRelationShape) {
  auto generated = GenerateRelationalSchema(CompanyPaperErSchema());
  ASSERT_TRUE(generated.ok());
  const TableSchema& works_on = generated->tables[4];
  ASSERT_EQ(works_on.foreign_keys().size(), 2u);
  EXPECT_EQ(works_on.foreign_keys()[0].referenced_table, "PROJECT");
  EXPECT_EQ(works_on.foreign_keys()[1].referenced_table, "EMPLOYEE");
  // PK covers both FK attribute sets.
  EXPECT_EQ(works_on.primary_key().size(), 2u);
  // Relationship attribute HOURS rides along.
  EXPECT_TRUE(works_on.AttributeIndex("HOURS").has_value());
  // Mapping: fk0 references the left (PROJECT) side.
  const FkErInfo* fk0 = generated->mapping.FindFk("WORKS_ON", 0);
  ASSERT_NE(fk0, nullptr);
  EXPECT_TRUE(fk0->references_left);
  const FkErInfo* fk1 = generated->mapping.FindFk("WORKS_ON", 1);
  ASSERT_NE(fk1, nullptr);
  EXPECT_FALSE(fk1->references_left);
}

TEST(ErToRelationalTest, FkNameOverrides) {
  ErToRelationalOptions options;
  options.fk_attribute_names["WORKS_FOR"] = {"D_ID"};
  auto generated =
      GenerateRelationalSchema(CompanyPaperErSchema(), options);
  ASSERT_TRUE(generated.ok());
  const TableSchema* employee = nullptr;
  for (const auto& t : generated->tables) {
    if (t.name() == "EMPLOYEE") employee = &t;
  }
  ASSERT_NE(employee, nullptr);
  EXPECT_EQ(employee->foreign_keys()[0].local_attributes[0], "D_ID");
}

TEST(ErToRelationalTest, SelfNMRelationship) {
  ERSchema er;
  EntityType paper;
  paper.name = "PAPER";
  paper.attributes = {{"ID", ValueType::kString, true, false}};
  ASSERT_TRUE(er.AddEntityType(paper).ok());
  ASSERT_TRUE(er.AddRelationship("CITES", "PAPER", "N:M", "PAPER").ok());
  auto generated = GenerateRelationalSchema(er);
  ASSERT_TRUE(generated.ok());
  ASSERT_EQ(generated->tables.size(), 2u);
  const TableSchema& cites = generated->tables[1];
  // Self N:M disambiguates the second FK column name.
  EXPECT_EQ(cites.foreign_keys().size(), 2u);
  EXPECT_NE(cites.foreign_keys()[0].local_attributes[0],
            cites.foreign_keys()[1].local_attributes[0]);
}

TEST(ErToRelationalTest, RejectsSelfOneToMany) {
  ERSchema er;
  EntityType node;
  node.name = "N";
  node.attributes = {{"ID", ValueType::kString, true, false}};
  ASSERT_TRUE(er.AddEntityType(node).ok());
  ASSERT_TRUE(er.AddRelationship("parent", "N", "1:N", "N").ok());
  EXPECT_TRUE(GenerateRelationalSchema(er).status().IsInvalidArgument());
}

TEST(MiddleRelationDetectionTest, PaperWorksForIsMiddle) {
  auto dataset = BuildCompanyPaperDataset();
  ASSERT_TRUE(dataset.ok());
  auto index = dataset->db->TableIndex("WORKS_FOR");
  ASSERT_TRUE(index.has_value());
  EXPECT_TRUE(LooksLikeMiddleRelation(*dataset->db, *index));
  EXPECT_FALSE(LooksLikeMiddleRelation(
      *dataset->db, *dataset->db->TableIndex("EMPLOYEE")));
  EXPECT_FALSE(LooksLikeMiddleRelation(
      *dataset->db, *dataset->db->TableIndex("DEPARTMENT")));
}

TEST(ReverseEngineerTest, RecoversPaperConceptualShape) {
  auto dataset = BuildCompanyPaperDataset();
  ASSERT_TRUE(dataset.ok());
  auto recovered = ReverseEngineerEr(*dataset->db);
  ASSERT_TRUE(recovered.ok());
  // 4 entity types.
  EXPECT_EQ(recovered->schema.entity_types().size(), 4u);
  // 4 relationships: 3 one-to-many (from FKs) + 1 N:M (from WORKS_FOR).
  ASSERT_EQ(recovered->schema.relationships().size(), 4u);
  size_t nm_count = 0;
  for (const auto& rel : recovered->schema.relationships()) {
    if (rel.cardinality == Cardinality::kNM) {
      ++nm_count;
      EXPECT_EQ(rel.left_entity, "EMPLOYEE");
      EXPECT_EQ(rel.right_entity, "PROJECT");
      // HOURS becomes a relationship attribute.
      ASSERT_EQ(rel.attributes.size(), 1u);
      EXPECT_EQ(rel.attributes[0].name, "HOURS");
    } else {
      EXPECT_EQ(rel.cardinality, Cardinality::kOneN);
    }
  }
  EXPECT_EQ(nm_count, 1u);
  EXPECT_TRUE(recovered->mapping.IsMiddleRelation("WORKS_FOR"));
}

TEST(ReverseEngineerTest, FkOrientationRecorded) {
  auto dataset = BuildCompanyPaperDataset();
  ASSERT_TRUE(dataset.ok());
  auto recovered = ReverseEngineerEr(*dataset->db);
  ASSERT_TRUE(recovered.ok());
  // EMPLOYEE fk0 (D_ID -> DEPARTMENT): relationship DEPARTMENT 1:N
  // EMPLOYEE with the FK referencing the left entity.
  const FkErInfo* info = recovered->mapping.FindFk("EMPLOYEE", 0);
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->references_left);
  const RelationshipType* rel =
      recovered->schema.FindRelationship(info->relationship);
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->left_entity, "DEPARTMENT");
  EXPECT_EQ(rel->right_entity, "EMPLOYEE");
  EXPECT_EQ(rel->cardinality, Cardinality::kOneN);
}

TEST(RoundTripTest, GeneratedSchemaReversesToSameShape) {
  // Forward: ER -> relational; build empty DB; reverse: relational -> ER.
  auto generated = GenerateRelationalSchema(CompanyPaperErSchema());
  ASSERT_TRUE(generated.ok());
  Database db;
  for (TableSchema& schema : generated->tables) {
    ASSERT_TRUE(db.AddTable(std::move(schema)).ok());
  }
  auto recovered = ReverseEngineerEr(db);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->schema.entity_types().size(), 4u);
  EXPECT_EQ(recovered->schema.relationships().size(), 4u);
  size_t nm = 0;
  for (const auto& rel : recovered->schema.relationships()) {
    if (rel.cardinality == Cardinality::kNM) ++nm;
  }
  EXPECT_EQ(nm, 1u);
  // Middle relation identified by both directions identically.
  EXPECT_TRUE(recovered->mapping.IsMiddleRelation("WORKS_ON"));
}

TEST(ReverseEngineerTest, SelfNMMiddleRelation) {
  BibliographyGenOptions options;
  options.num_papers = 10;
  options.num_authors = 5;
  auto dataset = GenerateBibliographyDataset(options);
  ASSERT_TRUE(dataset.ok());
  auto recovered = ReverseEngineerEr(*dataset->db);
  ASSERT_TRUE(recovered.ok());
  bool found_self_nm = false;
  for (const auto& rel : recovered->schema.relationships()) {
    if (rel.cardinality == Cardinality::kNM &&
        rel.left_entity == rel.right_entity) {
      found_self_nm = true;
    }
  }
  EXPECT_TRUE(found_self_nm);
}

TEST(MappingAccessorsTest, Basics) {
  auto dataset = BuildCompanyPaperDataset();
  ASSERT_TRUE(dataset.ok());
  const ErRelationalMapping& mapping = dataset->mapping;
  EXPECT_EQ(mapping.EntityOf("EMPLOYEE"), "EMPLOYEE");
  EXPECT_EQ(mapping.EntityOf("WORKS_FOR"), "");  // middle
  EXPECT_EQ(mapping.RelationshipOf("EMPLOYEE", 0), "WORKS_FOR");
  EXPECT_EQ(mapping.RelationshipOf("EMPLOYEE", 9), "");
  EXPECT_EQ(mapping.FindFk("NOPE", 0), nullptr);
}

}  // namespace
}  // namespace claks
