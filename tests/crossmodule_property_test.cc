// Copyright 2026 The claks Authors.
//
// Cross-module invariants: for every connection the engine can produce on
// the paper instance and on synthetic datasets, the SQL generator, the
// verbalizer, the statistics and the stream enumerator must all behave
// consistently.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/string_util.h"
#include "core/engine.h"
#include "core/explain.h"
#include "core/sql.h"
#include "core/topk.h"
#include "datasets/company_gen.h"
#include "datasets/company_paper.h"
#include "datasets/movies.h"

namespace claks {
namespace {

class CrossModuleTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    CompanyGenOptions options;
    options.seed = GetParam();
    options.num_departments = 4;
    options.employees_per_department = 6;
    auto dataset = GenerateCompanyDataset(options);
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    auto engine = KeywordSearchEngine::Create(
        dataset_.db.get(), dataset_.er_schema, dataset_.mapping);
    ASSERT_TRUE(engine.ok());
    engine_ = std::move(engine).ValueOrDie();
  }

  std::vector<SearchHit> Hits() {
    SearchOptions options;
    options.max_rdb_edges = 3;
    options.instance_check = false;
    auto result = engine_->Search("research xml", options);
    EXPECT_TRUE(result.ok());
    return result.ok() ? std::move(result->hits)
                       : std::vector<SearchHit>{};
  }

  GeneratedDataset dataset_;
  std::unique_ptr<KeywordSearchEngine> engine_;
};

TEST_P(CrossModuleTest, EverySqlStatementIsWellFormed) {
  for (const SearchHit& hit : Hits()) {
    if (!hit.connection.has_value()) continue;
    auto sql = ConnectionToSql(*hit.connection, *dataset_.db);
    ASSERT_TRUE(sql.ok()) << sql.status().ToString();
    EXPECT_EQ(sql->find("SELECT "), 0u);
    EXPECT_NE(sql->find(" FROM "), std::string::npos);
    EXPECT_EQ(sql->back(), ';');
    // One alias per tuple.
    for (size_t i = 0; i < hit.connection->tuples().size(); ++i) {
      EXPECT_NE(sql->find(StrFormat("t%zu.", i)), std::string::npos);
    }
  }
}

TEST_P(CrossModuleTest, EveryConnectionExplains) {
  for (const SearchHit& hit : Hits()) {
    if (!hit.connection.has_value()) continue;
    auto text = ExplainConnection(*hit.connection, *dataset_.db,
                                  dataset_.er_schema, dataset_.mapping);
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    EXPECT_FALSE(text->empty());
  }
}

TEST_P(CrossModuleTest, AmbiguityAtLeastOneAndCloseImpliesUnit) {
  for (const SearchHit& hit : Hits()) {
    EXPECT_GE(hit.ambiguity, 1.0 - 1e-9);
    if (!hit.connection.has_value() || !hit.analysis.has_value()) continue;
    // A purely functional (close, non-N:M) ER sequence multiplies unit
    // fan-outs only when oriented functionally; ambiguity 1.0 implies no
    // loose alternatives existed.
    if (hit.ambiguity <= 1.0 + 1e-9 && !hit.schema_close) {
      // Loose shape but no actual alternatives: instance data is sparse;
      // the instance-close check must agree there is no real looseness
      // only when a witness exists — nothing to assert strongly here
      // beyond non-contradiction, so check the analyzer does not crash.
      auto verdict = engine_->analyzer().IsInstanceClose(*hit.connection);
      EXPECT_TRUE(verdict.ok());
    }
  }
}

TEST_P(CrossModuleTest, StatisticsConsistentWithDataGraph) {
  // Sum of all relationship link counts equals the number of FK instance
  // edges, counting middle relations once per row (= 2 FK edges).
  size_t links = 0;
  size_t middle_rows = 0;
  for (const auto& [name, stats] : engine_->statistics().all()) {
    links += stats.link_count;
  }
  for (size_t t = 0; t < dataset_.db->num_tables(); ++t) {
    if (dataset_.mapping.IsMiddleRelation(dataset_.db->table(t).name())) {
      middle_rows += dataset_.db->table(t).num_rows();
    }
  }
  EXPECT_EQ(links + middle_rows, engine_->data_graph().num_edges());
}

TEST_P(CrossModuleTest, StreamMatchesEngineEnumeration) {
  auto hits = Hits();
  std::set<std::string> engine_set;
  for (const SearchHit& hit : hits) {
    if (hit.connection.has_value()) {
      engine_set.insert(hit.connection->ToString(*dataset_.db));
    }
  }
  // Stream both directions like the engine does.
  auto result = engine_->Search("research xml");
  ASSERT_TRUE(result.ok());
  if (result->matches.size() != 2) GTEST_SKIP();
  std::vector<uint32_t> a, b;
  for (const TupleMatch& m : result->matches[0].matches) {
    a.push_back(engine_->data_graph().NodeOf(m.tuple));
  }
  for (const TupleMatch& m : result->matches[1].matches) {
    b.push_back(engine_->data_graph().NodeOf(m.tuple));
  }
  std::set<std::string> stream_set;
  for (auto [from, to] : {std::make_pair(a, b), std::make_pair(b, a)}) {
    ConnectionStream stream(&engine_->data_graph(), from, to, 3);
    while (auto connection = stream.Next()) {
      stream_set.insert(connection->ToString(*dataset_.db));
      std::string reversed =
          connection->Reversed().ToString(*dataset_.db);
      stream_set.insert(reversed);
    }
  }
  for (const std::string& conn : engine_set) {
    EXPECT_TRUE(stream_set.count(conn) > 0) << conn;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossModuleTest,
                         ::testing::Values(1, 4, 9, 16, 25));

// --- Paper instance spot checks --------------------------------------------

TEST(CrossModulePaperTest, Connection3SqlAndReadingAgree) {
  auto dataset = BuildCompanyPaperDataset();
  ASSERT_TRUE(dataset.ok());
  DataGraph graph(dataset->db.get());
  // p1 - d1 - e1.
  TupleId p1 = PaperTuple(*dataset->db, "p1");
  TupleId d1 = PaperTuple(*dataset->db, "d1");
  TupleId e1 = PaperTuple(*dataset->db, "e1");
  Connection conn({p1, d1, e1},
                  {ConnectionEdge{0, true}, ConnectionEdge{0, false}});
  auto sql = ConnectionToSql(conn, *dataset->db);
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("t0.D_ID = t1.ID"), std::string::npos);
  EXPECT_NE(sql->find("t2.D_ID = t1.ID"), std::string::npos);

  auto reading = ExplainConnection(conn, *dataset->db, dataset->er_schema,
                                   dataset->mapping,
                                   CompanyPaperVerbalizer());
  ASSERT_TRUE(reading.ok());
  EXPECT_EQ(*reading,
            "project p1 is controlled by department d1, that employs "
            "employee e1");
}

TEST(CrossModulePaperTest, MoviesEngineSupportsNewModules) {
  auto dataset = GenerateMoviesDataset({});
  ASSERT_TRUE(dataset.ok());
  auto engine = KeywordSearchEngine::Create(
      dataset->db.get(), dataset->er_schema, dataset->mapping);
  ASSERT_TRUE(engine.ok());
  const InstanceStatistics& stats = (*engine)->statistics();
  // Every movie has a director and a studio: full right participation.
  EXPECT_DOUBLE_EQ(stats.StatsFor("DIRECTS").RightParticipation(), 1.0);
  EXPECT_DOUBLE_EQ(stats.StatsFor("PRODUCED_BY").RightParticipation(),
                   1.0);
  EXPECT_DOUBLE_EQ(stats.StatsFor("DIRECTS").AvgFanoutRightToLeft(), 1.0);
}

}  // namespace
}  // namespace claks
