// Copyright 2026 The claks Authors.
//
// Concurrent churn: N reader threads page cursors and search pinned
// snapshots while one writer applies delta mutation batches (with
// periodic compactions) through SearchService::Mutate. Invariants under
// race (run this suite under ThreadSanitizer — see .github/workflows):
//   - a pinned snapshot keeps answering with its generation's data, and
//     repeated queries against it are byte-identical, regardless of how
//     many mutations publish meanwhile;
//   - readers never observe a half-published generation: every snapshot
//     they acquire is non-null, warmed, and immediately searchable;
//   - snapshot versions are monotone across the whole run;
//   - a Prepare/Fetch cursor stays frozen on the generation it pinned.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "core/engine.h"
#include "datasets/company_gen.h"
#include "relational/database.h"
#include "service/search_service.h"

namespace claks {
namespace {

constexpr size_t kReaders = 3;
constexpr size_t kWriterBatches = 40;

std::string RenderedFingerprint(const SearchResult& result) {
  std::string out;
  for (const SearchHit& hit : result.hits) {
    out += hit.rendered;
    out += '\n';
  }
  return out;
}

/// Raises `current` to at least `candidate` and fails if a reader ever
/// observed a version going backwards.
void CheckMonotone(std::atomic<uint64_t>* current, uint64_t candidate) {
  uint64_t seen = current->load(std::memory_order_acquire);
  while (candidate > seen &&
         !current->compare_exchange_weak(seen, candidate,
                                         std::memory_order_acq_rel)) {
  }
}

TEST(ChurnTest, ReadersStayConsistentUnderDeltaChurn) {
  auto generated = GenerateCompanyDataset(CompanyGenOptions::AtScale(1));
  ASSERT_TRUE(generated.ok());
  GeneratedDataset dataset = std::move(generated).ValueOrDie();

  ServiceOptions options;
  options.num_threads = 2;
  options.cache_capacity = 0;
  options.delta_policy.mode = DeltaPolicy::Mode::kAuto;
  options.delta_policy.min_ops = 8;  // compactions fire mid-run
  options.delta_policy.fraction = 0.0;
  auto created = SearchService::Create(std::move(dataset.db),
                                       dataset.er_schema, dataset.mapping,
                                       options);
  ASSERT_TRUE(created.ok());
  std::unique_ptr<SearchService> service = std::move(created).ValueOrDie();

  // Lazy streaming keeps each read cheap even as the churn keeps adding
  // matches; the settled-k cutoff bounds the work per search.
  SearchOptions search;
  search.method = SearchMethod::kStream;
  search.ranker = RankerKind::kRdbLength;
  search.max_rdb_edges = 3;
  search.top_k = 5;

  std::atomic<bool> writer_done{false};
  std::atomic<uint64_t> max_version{0};
  std::atomic<size_t> reader_failures{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t reader = 0; reader < kReaders; ++reader) {
    readers.emplace_back([&, reader] {
      uint64_t last_version = 0;
      size_t rounds = 0;
      // A couple of extra rounds after the writer finishes so the final
      // generation is read concurrently with nothing.
      while (!writer_done.load(std::memory_order_acquire) || rounds < 2) {
        if (writer_done.load(std::memory_order_acquire)) ++rounds;

        // No half-published generation, ever.
        std::shared_ptr<const EngineSnapshot> snapshot =
            service->snapshot();
        if (snapshot == nullptr || snapshot->engine == nullptr ||
            snapshot->db == nullptr || !snapshot->engine->Warm()) {
          ++reader_failures;
          continue;
        }
        if (snapshot->version < last_version) ++reader_failures;
        last_version = snapshot->version;
        CheckMonotone(&max_version, snapshot->version);

        // Pinned snapshot: byte-identical answers however many
        // generations publish meanwhile.
        auto first = snapshot->engine->Search("smith xml", search);
        auto second = snapshot->engine->Search("smith xml", search);
        if (!first.ok() || !second.ok() ||
            RenderedFingerprint(*first) != RenderedFingerprint(*second)) {
          ++reader_failures;
        }

        // Cursor paging through the service API: every page must come
        // from the generation the cursor pinned at Prepare time.
        QueryRequest request;
        request.query_text = "smith xml";
        request.options = search;
        auto prepared = service->Prepare(request);
        if (!prepared.ok()) {
          ++reader_failures;
          continue;
        }
        uint64_t pinned = prepared->snapshot_version;
        for (int page = 0; page < 16; ++page) {
          auto response = service->Fetch(prepared->cursor_id, 3);
          if (!response.ok() || response->snapshot_version != pinned) {
            ++reader_failures;
            break;
          }
          if (response->drained) break;
        }
        if (!service->Close(prepared->cursor_id).ok()) ++reader_failures;
      }
    });
  }

  // The writer: insert-heavy churn with interleaved deletes, every batch
  // a delta derivation, compactions whenever 8 overlay ops accumulate.
  size_t inserted = 0;
  size_t deleted = 0;
  for (size_t batch = 0; batch < kWriterBatches; ++batch) {
    Status status = service->Mutate([&](Database* db) {
      Table* dependent = db->FindMutableTable("DEPENDENT");
      CLAKS_CHECK(dependent != nullptr);
      for (size_t op = 0; op < 3; ++op) {
        std::string id = "churn" + std::to_string(inserted);
        CLAKS_RETURN_NOT_OK(dependent
                                ->InsertValues({Value::String(id),
                                                Value::String("Smith"),
                                                Value::String("e1")})
                                .status());
        ++inserted;
      }
      if (batch % 3 == 2) {
        std::string id = "churn" + std::to_string(deleted);
        CLAKS_RETURN_NOT_OK(
            dependent->DeleteByPrimaryKey({Value::String(id)}));
        ++deleted;
      }
      return Status::OK();
    });
    ASSERT_TRUE(status.ok()) << status.message();
  }
  writer_done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(reader_failures.load(), 0u);
  ServiceStats stats = service->stats();
  // Every batch changed rows: all of them published, none fell back.
  EXPECT_EQ(stats.delta_mutations, kWriterBatches);
  EXPECT_EQ(stats.rebuild_mutations, 0u);
  EXPECT_EQ(stats.noop_mutations, 0u);
  EXPECT_GE(stats.compactions, 1u);
  EXPECT_EQ(stats.snapshot_version, 1 + kWriterBatches);
  EXPECT_GE(stats.snapshot_version, max_version.load());

  // The final generation carries exactly the net surviving churn rows.
  std::shared_ptr<const EngineSnapshot> final_snapshot =
      service->snapshot();
  const Table* dependent = final_snapshot->db->FindTable("DEPENDENT");
  ASSERT_NE(dependent, nullptr);
  size_t churn_rows = 0;
  for (size_t r = 0; r < dependent->num_rows(); ++r) {
    if (dependent->IsDeleted(r)) continue;
    if (dependent->row(r)[0].AsString().rfind("churn", 0) == 0) {
      ++churn_rows;
    }
  }
  EXPECT_EQ(churn_rows, inserted - deleted);
}

}  // namespace
}  // namespace claks
