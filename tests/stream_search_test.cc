// Copyright 2026 The claks Authors.
//
// SearchMethod::kStream: the streaming top-k path must reproduce the
// kEnumerate result space — same hit trees and same ranking keys at every
// rank position — while doing strictly less expansion work when a top-k
// bound lets it settle early. Ranking-key ties may order differently
// between the two methods (stream arrival vs enumeration order), so order
// equivalence is asserted on the key sequences, and set equality on the
// trees whenever no key tie spans the top-k boundary.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/engine.h"
#include "datasets/company_gen.h"
#include "datasets/company_paper.h"

namespace claks {
namespace {

const RankerKind kAllRankers[] = {
    RankerKind::kRdbLength,     RankerKind::kErLength,
    RankerKind::kCloseFirst,    RankerKind::kLoosePenalty,
    RankerKind::kInstanceClose, RankerKind::kCombined,
    RankerKind::kAmbiguity,     RankerKind::kMoreContext};

const RankerKind kMonotoneRankers[] = {
    RankerKind::kRdbLength,  RankerKind::kErLength,
    RankerKind::kCloseFirst, RankerKind::kLoosePenalty,
    RankerKind::kInstanceClose, RankerKind::kAmbiguity};

std::set<TupleTree> TreeSet(const SearchResult& result) {
  std::set<TupleTree> trees;
  for (const SearchHit& hit : result.hits) trees.insert(hit.tree);
  return trees;
}

std::vector<std::vector<double>> KeySequence(const SearchResult& result,
                                             RankerKind kind) {
  auto ranker = MakeRanker(kind);
  std::vector<std::vector<double>> keys;
  for (const SearchHit& hit : result.hits) {
    keys.push_back(ranker->SortKey(hit.ToRankInput()));
  }
  return keys;
}

class StreamSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    auto engine = KeywordSearchEngine::Create(
        dataset_.db.get(), dataset_.er_schema, dataset_.mapping);
    ASSERT_TRUE(engine.ok());
    engine_ = std::move(engine).ValueOrDie();
  }

  SearchResult Run(SearchMethod method, RankerKind ranker, size_t top_k,
                   const std::string& query = "Smith XML") {
    SearchOptions options;
    options.method = method;
    options.ranker = ranker;
    options.top_k = top_k;
    options.max_rdb_edges = 3;
    auto result = engine_->Search(query, options);
    EXPECT_TRUE(result.ok());
    return std::move(result).ValueOrDie();
  }

  CompanyPaperDataset dataset_;
  std::unique_ptr<KeywordSearchEngine> engine_;
};

TEST_F(StreamSearchTest, FullDrainEquivalenceEveryRanker) {
  for (RankerKind ranker : kAllRankers) {
    SearchResult enumerated = Run(SearchMethod::kEnumerate, ranker, 0);
    SearchResult streamed = Run(SearchMethod::kStream, ranker, 0);
    EXPECT_EQ(enumerated.hits.size(), 7u) << RankerKindToString(ranker);
    EXPECT_EQ(TreeSet(enumerated), TreeSet(streamed))
        << RankerKindToString(ranker);
    EXPECT_EQ(KeySequence(enumerated, ranker), KeySequence(streamed, ranker))
        << RankerKindToString(ranker);
  }
}

TEST_F(StreamSearchTest, TopKEquivalenceMonotoneRankers) {
  for (RankerKind ranker : kMonotoneRankers) {
    SearchResult full = Run(SearchMethod::kEnumerate, ranker, 0);
    auto full_keys = KeySequence(full, ranker);
    for (size_t k : {1u, 2u, 4u, 7u}) {
      SearchResult enumerated = Run(SearchMethod::kEnumerate, ranker, k);
      SearchResult streamed = Run(SearchMethod::kStream, ranker, k);
      EXPECT_EQ(KeySequence(enumerated, ranker),
                KeySequence(streamed, ranker))
          << RankerKindToString(ranker) << " k=" << k;
      // Tree sets must agree whenever no ranking-key tie spans the top-k
      // boundary (a boundary tie makes the k-th member a free choice).
      bool boundary_tie =
          k < full_keys.size() && full_keys[k - 1] == full_keys[k];
      if (!boundary_tie) {
        EXPECT_EQ(TreeSet(enumerated), TreeSet(streamed))
            << RankerKindToString(ranker) << " k=" << k;
      }
    }
  }
}

TEST_F(StreamSearchTest, EarlyTerminationDoesLessWork) {
  SearchResult full = Run(SearchMethod::kStream, RankerKind::kRdbLength, 0);
  SearchResult top1 = Run(SearchMethod::kStream, RankerKind::kRdbLength, 1);
  SearchResult top2 = Run(SearchMethod::kStream, RankerKind::kRdbLength, 2);
  EXPECT_GT(full.expansions, 0u);
  EXPECT_LT(top1.expansions, full.expansions);
  EXPECT_LE(top1.expansions, top2.expansions);
  EXPECT_LT(top2.expansions, full.expansions);
}

TEST_F(StreamSearchTest, NonMonotoneRankerDrainsFully) {
  for (RankerKind ranker :
       {RankerKind::kMoreContext, RankerKind::kCombined}) {
    SearchResult full = Run(SearchMethod::kStream, ranker, 0);
    SearchResult top3 = Run(SearchMethod::kStream, ranker, 3);
    // No settled-k predicate exists: the stream drains the full space.
    EXPECT_EQ(top3.expansions, full.expansions)
        << RankerKindToString(ranker);
    SearchResult enumerated = Run(SearchMethod::kEnumerate, ranker, 3);
    EXPECT_EQ(KeySequence(enumerated, ranker), KeySequence(top3, ranker))
        << RankerKindToString(ranker);
  }
}

TEST_F(StreamSearchTest, ExpansionsReportedOnlyForStream) {
  SearchResult streamed = Run(SearchMethod::kStream, RankerKind::kRdbLength, 0);
  SearchResult enumerated =
      Run(SearchMethod::kEnumerate, RankerKind::kRdbLength, 0);
  EXPECT_GT(streamed.expansions, 0u);
  EXPECT_EQ(enumerated.expansions, 0u);
}

TEST_F(StreamSearchTest, OrSemanticsDropsUnmatchedKeyword) {
  SearchOptions options;
  options.method = SearchMethod::kStream;
  options.max_rdb_edges = 3;
  options.require_all_keywords = false;
  auto result = engine_->Search("Smith XML quantum", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->query.keywords,
            (std::vector<std::string>{"smith", "xml"}));
  EXPECT_EQ(result->hits.size(), 7u);
  auto enumerated = Run(SearchMethod::kEnumerate, options.ranker, 0);
  EXPECT_EQ(TreeSet(*result), TreeSet(enumerated));
}

TEST_F(StreamSearchTest, AndSemanticsEmptyOnUnmatchedKeyword) {
  SearchOptions options;
  options.method = SearchMethod::kStream;
  auto result = engine_->Search("Smith quantum", options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->hits.empty());
}

TEST_F(StreamSearchTest, OneKeywordDegenerateCase) {
  SearchResult streamed =
      Run(SearchMethod::kStream, RankerKind::kCombined, 0, "Smith");
  SearchResult enumerated =
      Run(SearchMethod::kEnumerate, RankerKind::kCombined, 0, "Smith");
  EXPECT_EQ(streamed.hits.size(), 2u);  // e1 and e2
  EXPECT_EQ(TreeSet(streamed), TreeSet(enumerated));

  SearchResult top1 =
      Run(SearchMethod::kStream, RankerKind::kCombined, 1, "Smith");
  EXPECT_EQ(top1.hits.size(), 1u);
}

TEST_F(StreamSearchTest, PerEndpointLimitEquivalence) {
  SearchOptions options;
  options.method = SearchMethod::kStream;
  options.max_rdb_edges = 3;
  options.per_endpoint_limit = 1;
  auto streamed = engine_->Search("Smith XML", options);
  ASSERT_TRUE(streamed.ok());
  options.method = SearchMethod::kEnumerate;
  auto enumerated = engine_->Search("Smith XML", options);
  ASSERT_TRUE(enumerated.ok());
  // Endpoint pairs of the 7 connections collapse to 4 groups.
  EXPECT_EQ(streamed->hits.size(), 4u);
  EXPECT_EQ(TreeSet(*streamed), TreeSet(*enumerated));
}

TEST_F(StreamSearchTest, PerEndpointLimitSettlesIncrementally) {
  SearchOptions options;
  options.method = SearchMethod::kStream;
  options.max_rdb_edges = 3;
  options.per_endpoint_limit = 1;
  options.ranker = RankerKind::kRdbLength;
  options.top_k = 2;
  auto limited = engine_->Search("Smith XML", options);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->hits.size(), 2u);
  // The settled-k predicate counts only group survivors, yet the two
  // length-1 connections live in distinct groups, so the stream still
  // terminates before the full drain.
  options.top_k = 0;
  options.per_endpoint_limit = 0;
  auto full = engine_->Search("Smith XML", options);
  ASSERT_TRUE(full.ok());
  EXPECT_LT(limited->expansions, full->expansions);
}

TEST_F(StreamSearchTest, ThreeKeywordsRejected) {
  SearchOptions options;
  options.method = SearchMethod::kStream;
  auto result = engine_->Search("Smith XML Alice", options);
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(StreamSearchTest, MethodName) {
  EXPECT_STREQ(SearchMethodToString(SearchMethod::kStream), "stream");
}

// The headline scaling property: at 10x the paper instance, a top-10
// streaming query provably settles long before the result space is
// exhausted.
TEST(StreamSearchScaleTest, TopTenExpandsStrictlyLessAt10x) {
  auto generated = GenerateCompanyDataset(CompanyGenOptions::AtScale(10));
  ASSERT_TRUE(generated.ok());
  GeneratedDataset dataset = std::move(generated).ValueOrDie();
  auto engine_or = KeywordSearchEngine::Create(
      dataset.db.get(), dataset.er_schema, dataset.mapping);
  ASSERT_TRUE(engine_or.ok());
  auto engine = std::move(engine_or).ValueOrDie();

  SearchOptions options;
  options.method = SearchMethod::kStream;
  options.max_rdb_edges = 3;
  options.ranker = RankerKind::kRdbLength;
  options.top_k = 0;
  auto full = engine->Search("smith xml", options);
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full->hits.size(), 10u);

  options.top_k = 10;
  auto top10 = engine->Search("smith xml", options);
  ASSERT_TRUE(top10.ok());
  EXPECT_EQ(top10->hits.size(), 10u);
  EXPECT_LT(top10->expansions, full->expansions);

  // Equal settings still agree with full enumeration.
  options.method = SearchMethod::kEnumerate;
  auto enumerated = engine->Search("smith xml", options);
  ASSERT_TRUE(enumerated.ok());
  auto ranker = MakeRanker(options.ranker);
  ASSERT_EQ(enumerated->hits.size(), top10->hits.size());
  for (size_t i = 0; i < top10->hits.size(); ++i) {
    EXPECT_EQ(ranker->SortKey(enumerated->hits[i].ToRankInput()),
              ranker->SortKey(top10->hits[i].ToRankInput()));
  }
}

}  // namespace
}  // namespace claks
