// Copyright 2026 The claks Authors.
//
// ER-projection tests: the "length in ER" column of the paper's Table 2.

#include "core/length.h"

#include <gtest/gtest.h>

#include <memory>

#include "datasets/company_paper.h"
#include "graph/traversal.h"

namespace claks {
namespace {

class LengthTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    graph_ = std::make_unique<DataGraph>(dataset_.db.get());
  }

  Connection Conn(const std::vector<std::string>& names) {
    std::vector<TupleId> tuples;
    std::vector<ConnectionEdge> edges;
    for (const auto& name : names) {
      tuples.push_back(PaperTuple(*dataset_.db, name));
    }
    for (size_t i = 0; i + 1 < tuples.size(); ++i) {
      uint32_t a = graph_->NodeOf(tuples[i]);
      bool found = false;
      for (const DataAdjacency& adj : graph_->Neighbors(a)) {
        if (adj.neighbor == graph_->NodeOf(tuples[i + 1])) {
          const DataEdge& edge = graph_->edge(adj.edge_index);
          edges.push_back(ConnectionEdge{edge.fk_index, adj.along_fk != 0});
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found);
    }
    return Connection(std::move(tuples), std::move(edges));
  }

  ErProjection Project(const std::vector<std::string>& names) {
    auto projection = ProjectToEr(Conn(names), *dataset_.db,
                                  dataset_.er_schema, dataset_.mapping);
    EXPECT_TRUE(projection.ok()) << projection.status().ToString();
    return std::move(projection).ValueOrDie();
  }

  CompanyPaperDataset dataset_;
  std::unique_ptr<DataGraph> graph_;
};

// Table 2 rows: (connection, length in RDB, length in ER).

TEST_F(LengthTest, Row1) {
  auto projection = Project({"d1", "e1"});
  EXPECT_EQ(projection.ErLength(), 1u);
  EXPECT_EQ(projection.CardinalitySequence(),
            (std::vector<Cardinality>{Cardinality::kOneN}));
  EXPECT_EQ(projection.ToString(), "DEPARTMENT 1:N EMPLOYEE");
}

TEST_F(LengthTest, Row2MiddleRelationCollapses) {
  // p1 - w_f1 - e1: RDB length 2, ER length 1 (one N:M step).
  auto projection = Project({"p1", "w_f1", "e1"});
  EXPECT_EQ(projection.ErLength(), 1u);
  EXPECT_EQ(projection.CardinalitySequence(),
            (std::vector<Cardinality>{Cardinality::kNM}));
  EXPECT_EQ(projection.ToString(), "PROJECT N:M EMPLOYEE");
  // Middle tuple dropped from the entity sequence.
  EXPECT_EQ(projection.entity_tuples.size(), 2u);
}

TEST_F(LengthTest, Row3) {
  auto projection = Project({"p1", "d1", "e1"});
  EXPECT_EQ(projection.ErLength(), 2u);
  EXPECT_EQ(projection.CardinalitySequence(),
            (std::vector<Cardinality>{Cardinality::kNOne,
                                      Cardinality::kOneN}));
}

TEST_F(LengthTest, Row4) {
  auto projection = Project({"d1", "p1", "w_f1", "e1"});
  EXPECT_EQ(projection.ErLength(), 2u);
  EXPECT_EQ(projection.CardinalitySequence(),
            (std::vector<Cardinality>{Cardinality::kOneN, Cardinality::kNM}));
  EXPECT_EQ(projection.ToString(),
            "DEPARTMENT 1:N PROJECT N:M EMPLOYEE");
}

TEST_F(LengthTest, Row7) {
  auto projection = Project({"d2", "p3", "w_f2", "e2"});
  EXPECT_EQ(projection.ErLength(), 2u);
}

TEST_F(LengthTest, Row8) {
  auto projection = Project({"d1", "e3", "t1"});
  EXPECT_EQ(projection.ErLength(), 2u);
  EXPECT_EQ(projection.CardinalitySequence(),
            (std::vector<Cardinality>{Cardinality::kOneN,
                                      Cardinality::kOneN}));
}

TEST_F(LengthTest, Row9) {
  // d2 - p2 - w_f3 - e3 - t1: RDB 4, ER 3.
  auto projection = Project({"d2", "p2", "w_f3", "e3", "t1"});
  EXPECT_EQ(projection.ErLength(), 3u);
  using C = Cardinality;
  EXPECT_EQ(projection.CardinalitySequence(),
            (std::vector<C>{C::kOneN, C::kNM, C::kOneN}));
}

TEST_F(LengthTest, ErLengthHelper) {
  auto length = ErLength(Conn({"d1", "p1", "w_f1", "e1"}), *dataset_.db,
                         dataset_.er_schema, dataset_.mapping);
  ASSERT_TRUE(length.ok());
  EXPECT_EQ(*length, 2u);
}

TEST_F(LengthTest, ReversedProjectionMirrors) {
  auto forward = Project({"d1", "p1", "w_f1", "e1"});
  auto backward = Project({"e1", "w_f1", "p1", "d1"});
  ASSERT_EQ(forward.ErLength(), backward.ErLength());
  auto f = forward.CardinalitySequence();
  auto b = backward.CardinalitySequence();
  for (size_t i = 0; i < f.size(); ++i) {
    EXPECT_EQ(f[i], Inverse(b[b.size() - 1 - i]));
  }
}

TEST_F(LengthTest, ConnectionEndingInMiddleRelationIsPartial) {
  // p1 - w_f1: ends inside the middle relation.
  auto projection = Project({"p1", "w_f1"});
  ASSERT_EQ(projection.steps.size(), 1u);
  EXPECT_TRUE(projection.steps[0].partial);
  EXPECT_EQ(projection.steps[0].relationship, "WORKS_ON");
  EXPECT_EQ(projection.steps[0].from_entity, "PROJECT");
}

TEST_F(LengthTest, ConnectionStartingInMiddleRelationIsPartial) {
  auto projection = Project({"w_f1", "e1"});
  ASSERT_EQ(projection.steps.size(), 1u);
  EXPECT_TRUE(projection.steps[0].partial);
  EXPECT_EQ(projection.steps[0].to_entity, "EMPLOYEE");
}

TEST_F(LengthTest, SingleTupleProjection) {
  auto projection = Project({"d1"});
  EXPECT_EQ(projection.ErLength(), 0u);
  EXPECT_EQ(projection.entity_tuples.size(), 1u);
}

TEST_F(LengthTest, SingleMiddleTupleProjection) {
  auto projection = Project({"w_f1"});
  EXPECT_EQ(projection.ErLength(), 0u);
  EXPECT_TRUE(projection.entity_tuples.empty());
}

TEST_F(LengthTest, UnknownFkMappingFails) {
  ErRelationalMapping empty_mapping;
  empty_mapping.tables["DEPARTMENT"] = TableErInfo{false, "DEPARTMENT"};
  empty_mapping.tables["EMPLOYEE"] = TableErInfo{false, "EMPLOYEE"};
  auto projection = ProjectToEr(Conn({"d1", "e1"}), *dataset_.db,
                                dataset_.er_schema, empty_mapping);
  EXPECT_TRUE(projection.status().IsNotFound());
}

TEST_F(LengthTest, ErLengthNeverExceedsRdbLength) {
  // Structural invariant over all enumerable paths in the instance.
  std::vector<std::string> endpoints = {"d1", "d2", "e1", "e2",
                                        "p1", "p2", "t1"};
  for (const auto& from : endpoints) {
    for (const auto& to : endpoints) {
      if (from == to) continue;
      auto paths = EnumerateSimplePaths(
          *graph_, graph_->NodeOf(PaperTuple(*dataset_.db, from)),
          graph_->NodeOf(PaperTuple(*dataset_.db, to)), 4);
      for (const NodePath& path : paths) {
        Connection conn = Connection::FromNodePath(*graph_, path);
        auto projection = ProjectToEr(conn, *dataset_.db,
                                      dataset_.er_schema, dataset_.mapping);
        ASSERT_TRUE(projection.ok());
        EXPECT_LE(projection->ErLength(), conn.RdbLength());
      }
    }
  }
}

}  // namespace
}  // namespace claks
