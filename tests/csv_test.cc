// Copyright 2026 The claks Authors.

#include "relational/csv.h"

#include <gtest/gtest.h>

namespace claks {
namespace {

TEST(ParseCsvTest, Simple) {
  auto r = ParseCsv("a,b\n1,2\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ((*r)[1], (std::vector<std::string>{"1", "2"}));
}

TEST(ParseCsvTest, MissingFinalNewline) {
  auto r = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
}

TEST(ParseCsvTest, QuotedFields) {
  auto r = ParseCsv("\"a,b\",\"c\"\"d\",\"line\nbreak\"\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0][0], "a,b");
  EXPECT_EQ((*r)[0][1], "c\"d");
  EXPECT_EQ((*r)[0][2], "line\nbreak");
}

TEST(ParseCsvTest, CrLf) {
  auto r = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[1][1], "2");
}

TEST(ParseCsvTest, EmptyFields) {
  auto r = ParseCsv("a,,c\n,,\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0], (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ((*r)[1], (std::vector<std::string>{"", "", ""}));
}

TEST(ParseCsvTest, Errors) {
  EXPECT_TRUE(ParseCsv("\"unterminated").status().IsParseError());
  EXPECT_TRUE(ParseCsv("ab\"cd\n").status().IsParseError());
}

TEST(ParseCsvTest, AlternateSeparator) {
  auto r = ParseCsv("a;b\n1;2\n", ';');
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0][1], "b");
}

TEST(CsvEscapeTest, QuotesWhenNeeded) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("q\"q"), "\"q\"\"q\"");
  EXPECT_EQ(CsvEscape("nl\n"), "\"nl\n\"");
}

Table MakeTable() {
  return Table(TableSchema("T",
                           {{"ID", ValueType::kString},
                            {"N", ValueType::kInt64, /*nullable=*/true},
                            {"TXT", ValueType::kString}},
                           {"ID"}));
}

TEST(LoadCsvTest, LoadsTypedRows) {
  Table t = MakeTable();
  ASSERT_TRUE(
      LoadCsvInto(&t, "ID,N,TXT\nr1,5,hello\nr2,,\"with, comma\"\n").ok());
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.at(0, 1).AsInt64(), 5);
  EXPECT_TRUE(t.at(1, 1).is_null());
  EXPECT_EQ(t.at(1, 2).AsString(), "with, comma");
}

TEST(LoadCsvTest, HeaderValidation) {
  Table t = MakeTable();
  EXPECT_TRUE(LoadCsvInto(&t, "ID,WRONG,TXT\nr1,5,x\n").IsParseError());
  EXPECT_TRUE(LoadCsvInto(&t, "ID,N\nr1,5\n").IsParseError());
  EXPECT_TRUE(LoadCsvInto(&t, "").IsParseError());
}

TEST(LoadCsvTest, NoHeaderMode) {
  Table t = MakeTable();
  ASSERT_TRUE(LoadCsvInto(&t, "r1,5,x\n", /*has_header=*/false).ok());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(LoadCsvTest, TypeErrorsPropagate) {
  Table t = MakeTable();
  EXPECT_TRUE(LoadCsvInto(&t, "ID,N,TXT\nr1,notanumber,x\n").IsParseError());
}

TEST(LoadCsvTest, ArityErrorsPropagate) {
  Table t = MakeTable();
  EXPECT_TRUE(LoadCsvInto(&t, "ID,N,TXT\nr1,5\n").IsParseError());
}

TEST(CsvRoundTripTest, TableToCsvAndBack) {
  Table t = MakeTable();
  ASSERT_TRUE(t.InsertValues({Value::String("r1"), Value::Int64(1),
                              Value::String("plain")})
                  .ok());
  ASSERT_TRUE(t.InsertValues({Value::String("r2"), Value::Null(),
                              Value::String("quote\"and,comma")})
                  .ok());
  std::string csv = TableToCsv(t);
  Table back = MakeTable();
  ASSERT_TRUE(LoadCsvInto(&back, csv).ok());
  ASSERT_EQ(back.num_rows(), 2u);
  EXPECT_EQ(back.at(1, 2).AsString(), "quote\"and,comma");
  EXPECT_TRUE(back.at(1, 1).is_null());
  EXPECT_EQ(back.at(0, 1).AsInt64(), 1);
}

}  // namespace
}  // namespace claks
