// Copyright 2026 The claks Authors.

#include "relational/value.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace claks {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "");
}

TEST(ValueTest, TypedConstructionAndAccess) {
  EXPECT_EQ(Value::Int64(42).AsInt64(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::String("xml").AsString(), "xml");
}

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value::Int64(1).type(), ValueType::kInt64);
  EXPECT_EQ(Value::Double(1).type(), ValueType::kDouble);
  EXPECT_EQ(Value::Bool(false).type(), ValueType::kBool);
  EXPECT_EQ(Value::String("").type(), ValueType::kString);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Int64(-7).ToString(), "-7");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::String("Smith").ToString(), "Smith");
  EXPECT_EQ(Value::Double(1.5).ToString(), "1.5");
}

TEST(ValueTest, EqualityWithinType) {
  EXPECT_EQ(Value::Int64(3), Value::Int64(3));
  EXPECT_NE(Value::Int64(3), Value::Int64(4));
  EXPECT_EQ(Value::String("a"), Value::String("a"));
  EXPECT_NE(Value::String("a"), Value::String("b"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, CrossTypeInequality) {
  EXPECT_NE(Value::Int64(1), Value::Double(1.0));
  EXPECT_NE(Value::Null(), Value::Int64(0));
  EXPECT_NE(Value::String("1"), Value::Int64(1));
}

TEST(ValueTest, OrderingWithinType) {
  EXPECT_LT(Value::Int64(1), Value::Int64(2));
  EXPECT_LT(Value::String("a"), Value::String("b"));
  EXPECT_FALSE(Value::Int64(2) < Value::Int64(1));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::String("xml").Hash(), Value::String("xml").Hash());
  EXPECT_EQ(Value::Int64(5).Hash(), Value::Int64(5).Hash());
  // NULL and 0 should not collide with overwhelming likelihood.
  EXPECT_NE(Value::Null().Hash(), Value::Int64(0).Hash());
}

TEST(ValueTest, UsableInUnorderedSet) {
  std::unordered_set<Value, ValueHash> set;
  set.insert(Value::String("a"));
  set.insert(Value::String("a"));
  set.insert(Value::Int64(1));
  EXPECT_EQ(set.size(), 2u);
}

TEST(ValueParseTest, Int64) {
  auto r = Value::Parse("123", ValueType::kInt64);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsInt64(), 123);
  EXPECT_FALSE(Value::Parse("12x", ValueType::kInt64).ok());
  EXPECT_FALSE(Value::Parse("1.5", ValueType::kInt64).ok());
}

TEST(ValueParseTest, Double) {
  auto r = Value::Parse("2.75", ValueType::kDouble);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->AsDouble(), 2.75);
  EXPECT_FALSE(Value::Parse("abc", ValueType::kDouble).ok());
}

TEST(ValueParseTest, Bool) {
  EXPECT_TRUE(Value::Parse("true", ValueType::kBool)->AsBool());
  EXPECT_TRUE(Value::Parse("TRUE", ValueType::kBool)->AsBool());
  EXPECT_TRUE(Value::Parse("1", ValueType::kBool)->AsBool());
  EXPECT_FALSE(Value::Parse("false", ValueType::kBool)->AsBool());
  EXPECT_FALSE(Value::Parse("0", ValueType::kBool)->AsBool());
  EXPECT_FALSE(Value::Parse("yes", ValueType::kBool).ok());
}

TEST(ValueParseTest, EmptyBecomesNullForNonStrings) {
  EXPECT_TRUE(Value::Parse("", ValueType::kInt64)->is_null());
  EXPECT_TRUE(Value::Parse("", ValueType::kDouble)->is_null());
  // Empty string stays a string.
  auto r = Value::Parse("", ValueType::kString);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->type(), ValueType::kString);
}

TEST(ValueParseTest, RoundTrip) {
  for (int64_t v : {-5LL * 1000000000LL, -1LL, 0LL, 7LL, 1LL << 40}) {
    auto r = Value::Parse(Value::Int64(v).ToString(), ValueType::kInt64);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->AsInt64(), v);
  }
}

TEST(ValueTypeTest, Names) {
  EXPECT_STREQ(ValueTypeToString(ValueType::kInt64), "INT64");
  EXPECT_STREQ(ValueTypeToString(ValueType::kString), "STRING");
  EXPECT_STREQ(ValueTypeToString(ValueType::kNull), "NULL");
}

}  // namespace
}  // namespace claks
