// Copyright 2026 The claks Authors.

#include "common/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace claks {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, DefaultLevelIsWarning) {
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST_F(LoggingTest, SetAndGetRoundTrip) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, MacroStreamsWithoutCrashing) {
  SetLogLevel(LogLevel::kError);  // suppress output during the test
  CLAKS_LOG(Debug) << "debug " << 1;
  CLAKS_LOG(Info) << "info " << 2.5;
  CLAKS_LOG(Warning) << "warning " << "text";
  // Emitting at or above the level must also not crash.
  CLAKS_LOG(Error) << "error path exercised";
}

TEST_F(LoggingTest, SinkReceivesWholeLines) {
  SetLogLevel(LogLevel::kInfo);
  std::vector<std::string> lines;
  SetLogSink([&lines](LogLevel, const std::string& line) {
    lines.push_back(line);
  });
  CLAKS_LOG(Info) << "hello " << 42;
  CLAKS_LOG(Debug) << "suppressed";  // below the level: not emitted
  SetLogSink(nullptr);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("hello 42"), std::string::npos);
  EXPECT_NE(lines[0].find("[INFO "), std::string::npos);
}

TEST_F(LoggingTest, WithFieldRendersStructuredSuffix) {
  SetLogLevel(LogLevel::kInfo);
  std::vector<std::string> lines;
  SetLogSink([&lines](LogLevel, const std::string& line) {
    lines.push_back(line);
  });
  CLAKS_LOG(Info).WithField("ms", 41).WithField("method", "stream")
      << "slow query";
  SetLogSink(nullptr);
  ASSERT_EQ(lines.size(), 1u);
  // Message body first, fields appended in attachment order.
  EXPECT_NE(lines[0].find("slow query ms=41 method=stream"),
            std::string::npos)
      << lines[0];
}

TEST_F(LoggingTest, WithFieldQuotesValuesThatWouldNotRoundTrip) {
  SetLogLevel(LogLevel::kInfo);
  std::vector<std::string> lines;
  SetLogSink([&lines](LogLevel, const std::string& line) {
    lines.push_back(line);
  });
  CLAKS_LOG(Info)
      .WithField("query", "smith xml")   // space: quoted
      .WithField("note", "a=b")          // '=': quoted
      .WithField("empty", "")            // empty: quoted
      .WithField("quoted", "say \"hi\"")  // quotes: escaped
      << "fields";
  SetLogSink(nullptr);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("query=\"smith xml\""), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("note=\"a=b\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("empty=\"\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("quoted=\"say \\\"hi\\\"\""), std::string::npos)
      << lines[0];
}

TEST_F(LoggingTest, WithFieldBelowLevelEmitsNothing) {
  SetLogLevel(LogLevel::kError);
  std::vector<std::string> lines;
  SetLogSink([&lines](LogLevel, const std::string& line) {
    lines.push_back(line);
  });
  CLAKS_LOG(Info).WithField("key", "value") << "suppressed";
  SetLogSink(nullptr);
  EXPECT_TRUE(lines.empty());
}

// Regression test for the unsynchronized-sink race: N threads log
// concurrently and every captured line must be whole — one prefix, one
// intact payload, no interleaved characters from another thread.
TEST_F(LoggingTest, ConcurrentLoggingKeepsEveryLineIntact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  SetLogLevel(LogLevel::kInfo);
  std::vector<std::string> lines;
  // The sink runs under the logger's mutex: plain push_back is safe, and
  // any torn line would land here torn.
  SetLogSink([&lines](LogLevel, const std::string& line) {
    lines.push_back(line);
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      const std::string payload(32, static_cast<char>('a' + t));
      for (int i = 0; i < kPerThread; ++i) {
        CLAKS_LOG(Info) << "thread " << t << " message " << i
                        << " payload " << payload;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  SetLogSink(nullptr);

  ASSERT_EQ(lines.size(),
            static_cast<size_t>(kThreads) * kPerThread);
  std::vector<int> per_thread(kThreads, 0);
  for (const std::string& line : lines) {
    // Shape: "[INFO file:line] thread T message I payload <32 x same char>".
    size_t t_pos = line.find("thread ");
    size_t p_pos = line.find(" payload ");
    ASSERT_NE(t_pos, std::string::npos) << line;
    ASSERT_NE(p_pos, std::string::npos) << line;
    int t = std::stoi(line.substr(t_pos + 7));
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    // The payload is exactly the writer's 32-character run, terminating
    // the line — a torn write could not reproduce it.
    const std::string expected(32, static_cast<char>('a' + t));
    EXPECT_EQ(line.substr(p_pos + 9), expected) << line;
    ++per_thread[t];
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_thread[t], kPerThread) << "thread " << t;
  }
}

TEST_F(LoggingTest, LevelOrdering) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kWarning));
  EXPECT_LT(static_cast<int>(LogLevel::kWarning),
            static_cast<int>(LogLevel::kError));
}

}  // namespace
}  // namespace claks
