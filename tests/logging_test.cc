// Copyright 2026 The claks Authors.

#include "common/logging.h"

#include <gtest/gtest.h>

namespace claks {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, DefaultLevelIsWarning) {
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST_F(LoggingTest, SetAndGetRoundTrip) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, MacroStreamsWithoutCrashing) {
  SetLogLevel(LogLevel::kError);  // suppress output during the test
  CLAKS_LOG(Debug) << "debug " << 1;
  CLAKS_LOG(Info) << "info " << 2.5;
  CLAKS_LOG(Warning) << "warning " << "text";
  // Emitting at or above the level must also not crash.
  CLAKS_LOG(Error) << "error path exercised";
}

TEST_F(LoggingTest, LevelOrdering) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kWarning));
  EXPECT_LT(static_cast<int>(LogLevel::kWarning),
            static_cast<int>(LogLevel::kError));
}

}  // namespace
}  // namespace claks
