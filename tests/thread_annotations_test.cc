// Copyright 2026 The claks Authors.
//
// Compile/smoke coverage for common/thread_annotations.h and
// common/mutex.h: a class exercising every macro the codebase uses must
// compile on both compilers (on clang the attributes are real and this
// file participates in -Wthread-safety -Werror; on gcc they expand to
// nothing) and behave correctly at runtime under the sanitizer matrix.

#include "common/thread_annotations.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/mutex.h"
#include "common/thread_pool.h"

namespace claks {
namespace {

// One member or function per annotation family, arranged the way the
// real code uses them. If a macro's expansion were syntactically broken
// on either compiler, this class would not compile.
class AnnotatedCounter {
 public:
  void Add(int delta) CLAKS_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    AddLocked(delta);
  }

  bool TryAdd(int delta) CLAKS_EXCLUDES(mutex_) {
    if (!mutex_.TryLock()) return false;
    AddLocked(delta);
    mutex_.Unlock();
    return true;
  }

  int Get() const CLAKS_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return value_;
  }

  std::vector<int>* history() CLAKS_REQUIRES(mutex_) { return &history_; }

  Mutex& mutex() CLAKS_RETURN_CAPABILITY(mutex_) { return mutex_; }

  void ManualLock() CLAKS_ACQUIRE(mutex_) { mutex_.Lock(); }
  void ManualUnlock() CLAKS_RELEASE(mutex_) { mutex_.Unlock(); }

 private:
  void AddLocked(int delta) CLAKS_REQUIRES(mutex_) {
    value_ += delta;
    history_.push_back(value_);
  }

  mutable Mutex mutex_;
  int value_ CLAKS_GUARDED_BY(mutex_) = 0;
  std::vector<int> history_ CLAKS_GUARDED_BY(mutex_);
};

TEST(ThreadAnnotationsTest, EnabledFlagMatchesCompiler) {
  // The header must define the flag to exactly 0 or 1, and it must be 1
  // precisely when the compiler is clang with attribute support.
#if CLAKS_THREAD_ANNOTATIONS_ENABLED != 0 && \
    CLAKS_THREAD_ANNOTATIONS_ENABLED != 1
#error "CLAKS_THREAD_ANNOTATIONS_ENABLED must be 0 or 1"
#endif
#if defined(__clang__)
  EXPECT_EQ(CLAKS_THREAD_ANNOTATIONS_ENABLED, 1);
#else
  EXPECT_EQ(CLAKS_THREAD_ANNOTATIONS_ENABLED, 0);
#endif
}

TEST(ThreadAnnotationsTest, AnnotatedClassBehaves) {
  AnnotatedCounter counter;
  counter.Add(2);
  EXPECT_TRUE(counter.TryAdd(3));
  EXPECT_EQ(counter.Get(), 5);
}

TEST(ThreadAnnotationsTest, MutexLockIsExclusiveAcrossPoolThreads) {
  // Smoke the wrapper under real contention (and under TSan in the
  // sanitizer matrix): N tasks × M increments must never lose an update.
  AnnotatedCounter counter;
  ThreadPool pool(4, 16);
  constexpr int kTasks = 8;
  constexpr int kIncrements = 250;
  for (int t = 0; t < kTasks; ++t) {
    pool.Submit([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Add(1);
    });
  }
  pool.Drain();
  EXPECT_EQ(counter.Get(), kTasks * kIncrements);
}

TEST(ThreadAnnotationsTest, TryLockReportsContention) {
  // TryLock must fail while ANOTHER thread holds the mutex (calling
  // try_lock on the owning thread would be UB, so the holder is a pool
  // task and the handoff is an atomic phase flag).
  AnnotatedCounter counter;
  ThreadPool pool(1, 4);
  std::atomic<int> phase{0};
  pool.Submit([&counter, &phase] {
    counter.ManualLock();
    phase.store(1);
    while (phase.load() != 2) std::this_thread::yield();
    counter.ManualUnlock();
  });
  while (phase.load() != 1) std::this_thread::yield();
  EXPECT_FALSE(counter.TryAdd(1));
  phase.store(2);
  pool.Drain();
  EXPECT_TRUE(counter.TryAdd(1));
  EXPECT_EQ(counter.Get(), 1);
}

}  // namespace
}  // namespace claks
