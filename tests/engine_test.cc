// Copyright 2026 The claks Authors.

#include "core/engine.h"

#include <gtest/gtest.h>

#include <memory>

#include "datasets/company_paper.h"

namespace claks {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    auto engine = KeywordSearchEngine::Create(
        dataset_.db.get(), dataset_.er_schema, dataset_.mapping);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(engine).ValueOrDie();
  }

  CompanyPaperDataset dataset_;
  std::unique_ptr<KeywordSearchEngine> engine_;
};

TEST_F(EngineTest, CreateViaReverseEngineering) {
  auto engine = KeywordSearchEngine::Create(dataset_.db.get());
  ASSERT_TRUE(engine.ok());
  auto result = (*engine)->Search("Smith XML");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->hits.empty());
}

TEST_F(EngineTest, PaperQueryEnumerateDepth3Finds7Connections) {
  SearchOptions options;
  options.max_rdb_edges = 3;
  auto result = engine_->Search("Smith XML", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->hits.size(), 7u);
  // Every hit is path-shaped with full analysis.
  for (const SearchHit& hit : result->hits) {
    EXPECT_TRUE(hit.connection.has_value());
    EXPECT_TRUE(hit.analysis.has_value());
    EXPECT_GT(hit.text_score, 0.0);
    EXPECT_FALSE(hit.rendered.empty());
  }
}

TEST_F(EngineTest, DefaultRankingIsCloseFirst) {
  SearchOptions options;
  options.max_rdb_edges = 3;
  auto result = engine_->Search("Smith XML", options);
  ASSERT_TRUE(result.ok());
  const auto& hits = result->hits;
  ASSERT_EQ(hits.size(), 7u);
  // Top 3: the er-length-1 connections (1, 2, 5).
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(hits[i].er_length, 1u);
    EXPECT_TRUE(hits[i].schema_close);
  }
  // Hub-pattern connections (3, 6) come last.
  EXPECT_EQ(hits[5].hub_patterns, 1u);
  EXPECT_EQ(hits[6].hub_patterns, 1u);
}

TEST_F(EngineTest, RdbRankingPutsShortestFirst) {
  SearchOptions options;
  options.max_rdb_edges = 3;
  options.ranker = RankerKind::kRdbLength;
  auto result = engine_->Search("Smith XML", options);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->hits.size(); ++i) {
    EXPECT_LE(result->hits[i - 1].rdb_length, result->hits[i].rdb_length);
  }
}

TEST_F(EngineTest, InstanceCheckAnnotatesHits) {
  SearchOptions options;
  options.max_rdb_edges = 3;
  options.instance_check = true;
  auto result = engine_->Search("Smith XML", options);
  ASSERT_TRUE(result.ok());
  size_t instance_loose = 0;
  for (const SearchHit& hit : result->hits) {
    ASSERT_TRUE(hit.instance_close.has_value());
    if (!*hit.instance_close) ++instance_loose;
  }
  // Only connection 6 (p2 - d2 - e2) is instance-loose.
  EXPECT_EQ(instance_loose, 1u);
}

TEST_F(EngineTest, MtjntMethodTmax3) {
  SearchOptions options;
  options.method = SearchMethod::kMtjnt;
  options.tmax = 3;
  auto result = engine_->Search("Smith XML", options);
  ASSERT_TRUE(result.ok());
  // MTJNTs with <= 3 tuples: connections 1, 2, 5 only.
  EXPECT_EQ(result->hits.size(), 3u);
}

TEST_F(EngineTest, DiscoverEqualsMtjnt) {
  SearchOptions mtjnt;
  mtjnt.method = SearchMethod::kMtjnt;
  mtjnt.tmax = 4;
  SearchOptions discover = mtjnt;
  discover.method = SearchMethod::kDiscover;
  auto a = engine_->Search("Smith XML", mtjnt);
  auto b = engine_->Search("Smith XML", discover);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->hits.size(), b->hits.size());
}

TEST_F(EngineTest, BanksMethodReturnsTopK) {
  SearchOptions options;
  options.method = SearchMethod::kBanks;
  options.top_k = 4;
  auto result = engine_->Search("Smith XML", options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->hits.size(), 4u);
  EXPECT_FALSE(result->hits.empty());
}

TEST_F(EngineTest, ThreeKeywordsViaMtjnt) {
  SearchOptions options;
  options.method = SearchMethod::kMtjnt;
  options.tmax = 6;
  auto result = engine_->Search("Smith XML Alice", options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->hits.empty());
}

TEST_F(EngineTest, EnumerateRejectsThreeKeywords) {
  auto result = engine_->Search("Smith XML Alice");
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(EngineTest, SingleKeywordEnumerate) {
  auto result = engine_->Search("Smith");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->hits.size(), 2u);
  for (const SearchHit& hit : result->hits) {
    EXPECT_EQ(hit.rdb_length, 0u);
    EXPECT_TRUE(hit.schema_close);
  }
}

TEST_F(EngineTest, UnmatchedKeywordEmptyHits) {
  auto result = engine_->Search("Smith quantum");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->hits.empty());
  EXPECT_EQ(result->matches.size(), 2u);
}

TEST_F(EngineTest, EmptyQueryRejected) {
  EXPECT_TRUE(engine_->Search("").status().IsInvalidArgument());
  EXPECT_TRUE(engine_->Search("...").status().IsInvalidArgument());
}

TEST_F(EngineTest, TopKTruncation) {
  SearchOptions options;
  options.max_rdb_edges = 3;
  options.top_k = 2;
  auto result = engine_->Search("Smith XML", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->hits.size(), 2u);
}

TEST_F(EngineTest, KeywordOfMapFilled) {
  auto result = engine_->Search("Smith XML");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->keyword_of.size(), 6u);
  EXPECT_EQ(result->keyword_of[PaperTuple(*dataset_.db, "e1")], "smith");
  EXPECT_EQ(result->keyword_of[PaperTuple(*dataset_.db, "d1")], "xml");
}

TEST_F(EngineTest, RenderedStringsMarkKeywords) {
  SearchOptions options;
  options.max_rdb_edges = 1;
  auto result = engine_->Search("Smith XML", options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->hits.empty());
  EXPECT_NE(result->hits[0].rendered.find("(xml)"), std::string::npos);
  EXPECT_NE(result->hits[0].rendered.find("(smith)"), std::string::npos);
}

TEST_F(EngineTest, PathOrientationStartsAtFirstKeyword) {
  SearchOptions options;
  options.max_rdb_edges = 3;
  auto result = engine_->Search("Smith XML", options);
  ASSERT_TRUE(result.ok());
  auto smith_set = result->matches[0].TupleSet();
  for (const SearchHit& hit : result->hits) {
    ASSERT_TRUE(hit.connection.has_value());
    EXPECT_TRUE(smith_set.count(hit.connection->front()) > 0);
  }
}

TEST_F(EngineTest, ResultToString) {
  auto result = engine_->Search("Smith XML");
  ASSERT_TRUE(result.ok());
  std::string s = result->ToString(*dataset_.db);
  EXPECT_NE(s.find("query: smith xml"), std::string::npos);
  EXPECT_NE(s.find("#1"), std::string::npos);
}

TEST_F(EngineTest, AccessorsExposeComponents) {
  EXPECT_EQ(&engine_->database(), dataset_.db.get());
  EXPECT_EQ(engine_->data_graph().num_nodes(), 16u);
  EXPECT_EQ(engine_->schema_graph().num_tables(), 5u);
  EXPECT_GT(engine_->index().vocabulary_size(), 0u);
  EXPECT_EQ(engine_->er_schema().relationships().size(), 4u);
}

}  // namespace
}  // namespace claks
