// Copyright 2026 The claks Authors.
//
// End-to-end reproduction of every quantitative artefact in the paper:
// Figure 1 (ER schema), Figure 2 (instance), Table 1 (relationship
// classification), Table 2 (connection lengths RDB vs ER), Table 3
// (cardinality-annotated connections), the §3 MTJNT-loss claim and the §3
// ranking claim. EXPERIMENTS.md cites these assertions.

#include <gtest/gtest.h>

#include <array>
#include <map>
#include <memory>
#include <set>

#include "core/engine.h"
#include "datasets/company_paper.h"
#include "er/transitive.h"

namespace claks {
namespace {

class PaperReproductionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    auto engine = KeywordSearchEngine::Create(
        dataset_.db.get(), dataset_.er_schema, dataset_.mapping);
    ASSERT_TRUE(engine.ok());
    engine_ = std::move(engine).ValueOrDie();
  }

  // The paper's connections by Table 2 row number.
  std::vector<std::string> Row(int row) {
    switch (row) {
      case 1: return {"d1", "e1"};
      case 2: return {"p1", "w_f1", "e1"};
      case 3: return {"p1", "d1", "e1"};
      case 4: return {"d1", "p1", "w_f1", "e1"};
      case 5: return {"d2", "e2"};
      case 6: return {"p2", "d2", "e2"};
      case 7: return {"d2", "p3", "w_f2", "e2"};
      case 8: return {"d1", "e3", "t1"};
      case 9: return {"d2", "p2", "w_f3", "e3", "t1"};
      default: ADD_FAILURE(); return {};
    }
  }

  Connection Conn(int row) {
    auto names = Row(row);
    const DataGraph& graph = engine_->data_graph();
    std::vector<TupleId> tuples;
    std::vector<ConnectionEdge> edges;
    for (const auto& name : names) {
      tuples.push_back(PaperTuple(*dataset_.db, name));
    }
    for (size_t i = 0; i + 1 < tuples.size(); ++i) {
      uint32_t a = graph.NodeOf(tuples[i]);
      bool found = false;
      for (const DataAdjacency& adj : graph.Neighbors(a)) {
        if (adj.neighbor == graph.NodeOf(tuples[i + 1])) {
          const DataEdge& edge = graph.edge(adj.edge_index);
          edges.push_back(ConnectionEdge{edge.fk_index, adj.along_fk != 0});
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found);
    }
    return Connection(std::move(tuples), std::move(edges));
  }

  // Matches a ranked hit back to a Table 2 row (0 if unknown).
  int RowOfHit(const SearchHit& hit) {
    if (!hit.connection.has_value()) return 0;
    for (int row = 1; row <= 9; ++row) {
      if (hit.connection->SamePathUndirected(Conn(row))) return row;
    }
    return 0;
  }

  CompanyPaperDataset dataset_;
  std::unique_ptr<KeywordSearchEngine> engine_;
};

// --- Figure 1 --------------------------------------------------------------

TEST_F(PaperReproductionTest, Figure1ErSchema) {
  const ERSchema& er = dataset_.er_schema;
  ASSERT_TRUE(er.Validate().ok());
  EXPECT_EQ(er.entity_types().size(), 4u);
  ASSERT_EQ(er.relationships().size(), 4u);
  auto expect_rel = [&](const char* name, const char* left,
                        Cardinality card, const char* right) {
    const RelationshipType* rel = er.FindRelationship(name);
    ASSERT_NE(rel, nullptr) << name;
    EXPECT_EQ(rel->left_entity, left);
    EXPECT_EQ(rel->cardinality, card);
    EXPECT_EQ(rel->right_entity, right);
  };
  expect_rel("WORKS_FOR", "DEPARTMENT", Cardinality::kOneN, "EMPLOYEE");
  expect_rel("WORKS_ON", "PROJECT", Cardinality::kNM, "EMPLOYEE");
  expect_rel("CONTROLS", "DEPARTMENT", Cardinality::kOneN, "PROJECT");
  expect_rel("DEPENDENTS_OF", "EMPLOYEE", Cardinality::kOneN, "DEPENDENT");
}

// --- Figure 2 --------------------------------------------------------------

TEST_F(PaperReproductionTest, Figure2InstanceCounts) {
  const Database& db = *dataset_.db;
  EXPECT_EQ(db.FindTable("DEPARTMENT")->num_rows(), 3u);
  EXPECT_EQ(db.FindTable("PROJECT")->num_rows(), 3u);
  EXPECT_EQ(db.FindTable("WORKS_FOR")->num_rows(), 4u);
  EXPECT_EQ(db.FindTable("EMPLOYEE")->num_rows(), 4u);
  EXPECT_EQ(db.FindTable("DEPENDENT")->num_rows(), 2u);
  EXPECT_TRUE(db.CheckReferentialIntegrity().ok());
}

TEST_F(PaperReproductionTest, Figure2SpotValues) {
  const Database& db = *dataset_.db;
  TupleId d1 = PaperTuple(db, "d1");
  EXPECT_EQ(db.RowOf(d1)[1].AsString(), "Cs");
  TupleId e2 = PaperTuple(db, "e2");
  EXPECT_EQ(db.RowOf(e2)[1].AsString(), "Smith");
  EXPECT_EQ(db.RowOf(e2)[2].AsString(), "Barbara");
  EXPECT_EQ(db.RowOf(e2)[3].AsString(), "d2");
  TupleId wf2 = PaperTuple(db, "w_f2");
  EXPECT_EQ(db.RowOf(wf2)[0].AsString(), "e2");
  EXPECT_EQ(db.RowOf(wf2)[1].AsString(), "p3");
  EXPECT_EQ(db.RowOf(wf2)[2].AsInt64(), 56);
  TupleId t1 = PaperTuple(db, "t1");
  EXPECT_EQ(db.RowOf(t1)[2].AsString(), "Alice");
}

// --- Table 1 ---------------------------------------------------------------

TEST_F(PaperReproductionTest, Table1AllSixRows) {
  const ERSchema& er = dataset_.er_schema;
  struct Table1Row {
    std::vector<std::string> entities;
    std::vector<Cardinality> cardinalities;
    AssociationKind kind;
  };
  using C = Cardinality;
  const std::vector<Table1Row> kRows = {
      {{"DEPARTMENT", "EMPLOYEE"}, {C::kOneN}, AssociationKind::kImmediate},
      {{"PROJECT", "EMPLOYEE"}, {C::kNM}, AssociationKind::kImmediate},
      {{"DEPARTMENT", "EMPLOYEE", "DEPENDENT"},
       {C::kOneN, C::kOneN},
       AssociationKind::kTransitiveFunctional},
      {{"DEPARTMENT", "PROJECT", "EMPLOYEE"},
       {C::kOneN, C::kNM},
       AssociationKind::kMixedLoose},
      {{"PROJECT", "DEPARTMENT", "EMPLOYEE"},
       {C::kNOne, C::kOneN},
       AssociationKind::kTransitiveNM},
      {{"DEPARTMENT", "PROJECT", "EMPLOYEE", "DEPENDENT"},
       {C::kOneN, C::kNM, C::kOneN},
       AssociationKind::kMixedLoose},
  };
  for (const Table1Row& row : kRows) {
    auto paths = er.EnumeratePaths(row.entities.front(),
                                   row.entities.back(),
                                   row.entities.size() - 1);
    bool found = false;
    for (const ErPath& path : paths) {
      if (path.EntitySequence() != row.entities) continue;
      found = true;
      RelationshipAnalysis analysis = AnalyzePath(path);
      EXPECT_EQ(analysis.steps, row.cardinalities) << path.ToString();
      EXPECT_EQ(analysis.kind, row.kind) << path.ToString();
    }
    EXPECT_TRUE(found) << row.entities.front() << ".." << row.entities.back();
  }
}

// --- Table 2 ---------------------------------------------------------------

TEST_F(PaperReproductionTest, Table2LengthsAllNineRows) {
  // (row, length in RDB, length in ER) exactly as printed in the paper.
  const std::vector<std::array<size_t, 3>> kExpected = {
      {1, 1, 1}, {2, 2, 1}, {3, 2, 2}, {4, 3, 2}, {5, 1, 1},
      {6, 2, 2}, {7, 3, 2}, {8, 2, 2}, {9, 4, 3}};
  for (const auto& [row, rdb, er] : kExpected) {
    Connection conn = Conn(static_cast<int>(row));
    EXPECT_EQ(conn.RdbLength(), rdb) << "row " << row;
    auto length = ErLength(conn, *dataset_.db, dataset_.er_schema,
                           dataset_.mapping);
    ASSERT_TRUE(length.ok());
    EXPECT_EQ(*length, er) << "row " << row;
  }
}

TEST_F(PaperReproductionTest, Table2ConnectionSetIsComplete) {
  // Enumerating "Smith XML" connections with <= 3 FK edges yields exactly
  // rows 1-7 (no more, no fewer).
  SearchOptions options;
  options.max_rdb_edges = 3;
  auto result = engine_->Search("Smith XML", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->hits.size(), 7u);
  std::set<int> rows;
  for (const SearchHit& hit : result->hits) {
    int row = RowOfHit(hit);
    EXPECT_GE(row, 1);
    EXPECT_LE(row, 7);
    rows.insert(row);
  }
  EXPECT_EQ(rows.size(), 7u);
}

// --- Table 3 ---------------------------------------------------------------

TEST_F(PaperReproductionTest, Table3CardinalityAnnotations) {
  using C = Cardinality;
  const std::map<int, std::vector<C>> kExpected = {
      {1, {C::kOneN}},
      {2, {C::kOneN, C::kNOne}},
      {3, {C::kNOne, C::kOneN}},
      {4, {C::kOneN, C::kOneN, C::kNOne}},
      {5, {C::kOneN}},
      {6, {C::kNOne, C::kOneN}},
      {7, {C::kOneN, C::kOneN, C::kNOne}},
      {8, {C::kOneN, C::kOneN}},
      {9, {C::kOneN, C::kOneN, C::kNOne, C::kOneN}},
  };
  for (const auto& [row, expected] : kExpected) {
    EXPECT_EQ(Conn(row).RdbCardinalitySequence(), expected)
        << "row " << row;
  }
}

// --- §3 claim A: MTJNT loses connections 3, 4, 6, 7 -------------------------

TEST_F(PaperReproductionTest, MtjntLosesConnections3467) {
  SearchOptions options;
  options.method = SearchMethod::kMtjnt;
  options.tmax = 3;  // DISCOVER-style size bound matching the paper's claim
  auto mtjnt = engine_->Search("Smith XML", options);
  ASSERT_TRUE(mtjnt.ok());
  std::set<int> surviving;
  for (const SearchHit& hit : mtjnt->hits) {
    surviving.insert(RowOfHit(hit));
  }
  EXPECT_EQ(surviving, (std::set<int>{1, 2, 5}));
}

// --- §3 claim B: ranking ----------------------------------------------------

TEST_F(PaperReproductionTest, RdbLengthRanking) {
  SearchOptions options;
  options.max_rdb_edges = 3;
  options.ranker = RankerKind::kRdbLength;
  auto result = engine_->Search("Smith XML", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->hits.size(), 7u);
  // Best: 1 and 5; worst: 4 and 7.
  std::set<int> best{RowOfHit(result->hits[0]), RowOfHit(result->hits[1])};
  EXPECT_EQ(best, (std::set<int>{1, 5}));
  std::set<int> worst{RowOfHit(result->hits[5]), RowOfHit(result->hits[6])};
  EXPECT_EQ(worst, (std::set<int>{4, 7}));
}

TEST_F(PaperReproductionTest, CloseFirstRanking) {
  SearchOptions options;
  options.max_rdb_edges = 3;
  options.ranker = RankerKind::kCloseFirst;
  auto result = engine_->Search("Smith XML", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->hits.size(), 7u);
  // Best: 1, 2, 5. Then 4, 7. Worst: 3, 6.
  std::set<int> best{RowOfHit(result->hits[0]), RowOfHit(result->hits[1]),
                     RowOfHit(result->hits[2])};
  EXPECT_EQ(best, (std::set<int>{1, 2, 5}));
  std::set<int> middle{RowOfHit(result->hits[3]),
                       RowOfHit(result->hits[4])};
  EXPECT_EQ(middle, (std::set<int>{4, 7}));
  std::set<int> worst{RowOfHit(result->hits[5]), RowOfHit(result->hits[6])};
  EXPECT_EQ(worst, (std::set<int>{3, 6}));
}

// --- §3: connections 8 and 9 (query "Alice") --------------------------------

TEST_F(PaperReproductionTest, AliceConnections8And9) {
  // Alice (t1) relates to departments via a close (8) and a loose (9)
  // connection. Enumerate from the DEPARTMENT matches of a pseudo-keyword
  // by querying tuples directly through the analyzer.
  const AssociationAnalyzer& analyzer = engine_->analyzer();
  auto analysis8 = analyzer.Analyze(Conn(8));
  ASSERT_TRUE(analysis8.ok());
  EXPECT_EQ(analysis8->kind, AssociationKind::kTransitiveFunctional);
  EXPECT_TRUE(analysis8->schema_close);

  auto analysis9 = analyzer.Analyze(Conn(9));
  ASSERT_TRUE(analysis9.ok());
  EXPECT_FALSE(analysis9->schema_close);
  auto instance9 = analyzer.IsInstanceClose(Conn(9));
  ASSERT_TRUE(instance9.ok());
  EXPECT_FALSE(*instance9);  // loose at both levels
}

}  // namespace
}  // namespace claks
