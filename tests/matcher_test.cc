// Copyright 2026 The claks Authors.

#include "text/matcher.h"

#include <gtest/gtest.h>

#include <memory>

#include "datasets/company_paper.h"

namespace claks {
namespace {

class MatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    index_ = std::make_unique<InvertedIndex>(dataset_.db.get());
  }
  CompanyPaperDataset dataset_;
  std::unique_ptr<InvertedIndex> index_;
};

TEST_F(MatcherTest, ParseNormalisesAndDeduplicates) {
  KeywordQuery q =
      ParseKeywordQuery("Smith  XML xml SMITH", index_->tokenizer());
  EXPECT_EQ(q.keywords, (std::vector<std::string>{"smith", "xml"}));
  EXPECT_EQ(q.ToString(), "smith xml");
}

TEST_F(MatcherTest, ParseDropsEmptyTokens) {
  KeywordQuery q = ParseKeywordQuery("-- Smith ..", index_->tokenizer());
  EXPECT_EQ(q.keywords, (std::vector<std::string>{"smith"}));
  EXPECT_TRUE(ParseKeywordQuery("", index_->tokenizer()).keywords.empty());
}

TEST_F(MatcherTest, PaperQueryMatches) {
  KeywordQuery q = ParseKeywordQuery("Smith XML", index_->tokenizer());
  auto matches = MatchKeywords(*index_, q);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].keyword, "smith");
  EXPECT_EQ(matches[0].matches.size(), 2u);  // e1, e2
  EXPECT_EQ(matches[1].keyword, "xml");
  EXPECT_EQ(matches[1].matches.size(), 4u);  // d1, d2, p1, p2
  EXPECT_TRUE(AllKeywordsMatched(matches));
}

TEST_F(MatcherTest, TupleSetsAreSorted) {
  KeywordQuery q = ParseKeywordQuery("XML", index_->tokenizer());
  auto matches = MatchKeywords(*index_, q);
  ASSERT_EQ(matches.size(), 1u);
  auto set = matches[0].TupleSet();
  EXPECT_EQ(set.size(), 4u);
  EXPECT_TRUE(set.count(PaperTuple(*dataset_.db, "d1")) > 0);
  EXPECT_TRUE(set.count(PaperTuple(*dataset_.db, "p2")) > 0);
}

TEST_F(MatcherTest, UnmatchedKeywordYieldsEmptyEntry) {
  KeywordQuery q = ParseKeywordQuery("Smith quantum", index_->tokenizer());
  auto matches = MatchKeywords(*index_, q);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_FALSE(matches[0].empty());
  EXPECT_TRUE(matches[1].empty());
  EXPECT_FALSE(AllKeywordsMatched(matches));
}

TEST_F(MatcherTest, AttributeHitsAggregated) {
  // "xml" occurs in both P_NAME and P_DESCRIPTION of p2.
  KeywordQuery q = ParseKeywordQuery("xml", index_->tokenizer());
  auto matches = MatchKeywords(*index_, q);
  TupleId p2 = PaperTuple(*dataset_.db, "p2");
  const TupleMatch* match = nullptr;
  for (const TupleMatch& m : matches[0].matches) {
    if (m.tuple == p2) match = &m;
  }
  ASSERT_NE(match, nullptr);
  EXPECT_EQ(match->attribute_hits.size(), 2u);
  EXPECT_EQ(match->TotalFrequency(), 2u);
}

TEST_F(MatcherTest, EmptyQuery) {
  auto matches = MatchKeywords(*index_, KeywordQuery{});
  EXPECT_TRUE(matches.empty());
  EXPECT_FALSE(AllKeywordsMatched(matches));
}

}  // namespace
}  // namespace claks
