// Copyright 2026 The claks Authors.
//
// Verbalization tests, including the paper's §3 readings 1-4 verbatim in
// structure.

#include "core/explain.h"

#include <gtest/gtest.h>

#include <memory>

#include "datasets/company_paper.h"

namespace claks {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    graph_ = std::make_unique<DataGraph>(dataset_.db.get());
    options_ = CompanyPaperVerbalizer();
    options_.keyword_of = {
        {PaperTuple(*dataset_.db, "d1"), "XML"},
        {PaperTuple(*dataset_.db, "d2"), "XML"},
        {PaperTuple(*dataset_.db, "p1"), "XML"},
        {PaperTuple(*dataset_.db, "p2"), "XML"},
        {PaperTuple(*dataset_.db, "e1"), "Smith"},
        {PaperTuple(*dataset_.db, "e2"), "Smith"},
    };
  }

  Connection Conn(const std::vector<std::string>& names) {
    std::vector<TupleId> tuples;
    std::vector<ConnectionEdge> edges;
    for (const auto& name : names) {
      tuples.push_back(PaperTuple(*dataset_.db, name));
    }
    for (size_t i = 0; i + 1 < tuples.size(); ++i) {
      for (const DataAdjacency& adj :
           graph_->Neighbors(graph_->NodeOf(tuples[i]))) {
        if (adj.neighbor == graph_->NodeOf(tuples[i + 1])) {
          const DataEdge& edge = graph_->edge(adj.edge_index);
          edges.push_back(ConnectionEdge{edge.fk_index, adj.along_fk != 0});
          break;
        }
      }
    }
    return Connection(std::move(tuples), std::move(edges));
  }

  std::string Explain(const std::vector<std::string>& names) {
    auto text = ExplainConnection(Conn(names), *dataset_.db,
                                  dataset_.er_schema, dataset_.mapping,
                                  options_);
    EXPECT_TRUE(text.ok()) << text.status().ToString();
    return text.ValueOr("");
  }

  CompanyPaperDataset dataset_;
  std::unique_ptr<DataGraph> graph_;
  VerbalizerOptions options_;
};

// Paper §3: "The connections can be read as follows: ..."

TEST_F(ExplainTest, Reading1) {
  // "employee e1(Smith) works for department d1(XML)"
  EXPECT_EQ(Explain({"e1", "d1"}),
            "employee e1(Smith) works for department d1(XML)");
}

TEST_F(ExplainTest, Reading2) {
  // "employee e1(Smith) works on a project p1(XML)" (we omit the article).
  EXPECT_EQ(Explain({"e1", "w_f1", "p1"}),
            "employee e1(Smith) works on project p1(XML)");
}

TEST_F(ExplainTest, Reading3) {
  // "employee e1(Smith) works for department d1(XML), that controls
  // project p1(XML)"
  EXPECT_EQ(Explain({"e1", "d1", "p1"}),
            "employee e1(Smith) works for department d1(XML), that "
            "controls project p1(XML)");
}

TEST_F(ExplainTest, Reading4) {
  // "employee e1(Smith) works on project p1(XML), that is controlled by
  // department d1(XML)"
  EXPECT_EQ(Explain({"e1", "w_f1", "p1", "d1"}),
            "employee e1(Smith) works on project p1(XML), that is "
            "controlled by department d1(XML)");
}

TEST_F(ExplainTest, DependentChain) {
  EXPECT_EQ(Explain({"d1", "e3", "t1"}),
            "department d1(XML) employs employee e3, that has dependent "
            "dependent t1");
}

TEST_F(ExplainTest, SingleTuple) {
  EXPECT_EQ(Explain({"e1"}), "employee e1(Smith) matches alone");
}

TEST_F(ExplainTest, PartialStepEndsInsideRelationship) {
  EXPECT_EQ(Explain({"p1", "w_f1"}),
            "project p1(XML) participates in works on");
}

TEST_F(ExplainTest, PartialStepStartsInsideRelationship) {
  // Arriving at the right (EMPLOYEE) side means travelling left-to-right,
  // so the forward phrase applies.
  EXPECT_EQ(Explain({"w_f1", "e1"}),
            "a works on participation is worked on by employee e1(Smith)");
}

TEST_F(ExplainTest, DefaultPhrasesDeriveFromName) {
  VerbalizerOptions defaults;  // no phrase table
  auto text = ExplainConnection(Conn({"d1", "p1"}), *dataset_.db,
                                dataset_.er_schema, dataset_.mapping,
                                defaults);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "department d1 controls project p1");
}

TEST_F(ExplainTest, DefaultReversePhrase) {
  VerbalizerOptions defaults;
  auto text = ExplainConnection(Conn({"p1", "d1"}), *dataset_.db,
                                dataset_.er_schema, dataset_.mapping,
                                defaults);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "project p1 is related via controls to department d1");
}

}  // namespace
}  // namespace claks
