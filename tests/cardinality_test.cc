// Copyright 2026 The claks Authors.

#include "er/cardinality.h"

#include <gtest/gtest.h>

namespace claks {
namespace {

const Cardinality kAll[] = {Cardinality::kOneOne, Cardinality::kOneN,
                            Cardinality::kNOne, Cardinality::kNM};

TEST(CardinalityTest, ToString) {
  EXPECT_STREQ(CardinalityToString(Cardinality::kOneOne), "1:1");
  EXPECT_STREQ(CardinalityToString(Cardinality::kOneN), "1:N");
  EXPECT_STREQ(CardinalityToString(Cardinality::kNOne), "N:1");
  EXPECT_STREQ(CardinalityToString(Cardinality::kNM), "N:M");
}

TEST(CardinalityTest, Parse) {
  EXPECT_EQ(*ParseCardinality("1:1"), Cardinality::kOneOne);
  EXPECT_EQ(*ParseCardinality("1:N"), Cardinality::kOneN);
  EXPECT_EQ(*ParseCardinality("N:1"), Cardinality::kNOne);
  EXPECT_EQ(*ParseCardinality("N:M"), Cardinality::kNM);
  EXPECT_EQ(*ParseCardinality("M:N"), Cardinality::kNM);
  EXPECT_EQ(*ParseCardinality("n:m"), Cardinality::kNM);
  EXPECT_EQ(*ParseCardinality(" 1:n "), Cardinality::kOneN);
  EXPECT_TRUE(ParseCardinality("1-N").status().IsParseError());
  EXPECT_TRUE(ParseCardinality("2:N").status().IsParseError());
  EXPECT_TRUE(ParseCardinality("").status().IsParseError());
}

TEST(CardinalityTest, ParseRoundTrip) {
  for (Cardinality c : kAll) {
    EXPECT_EQ(*ParseCardinality(CardinalityToString(c)), c);
  }
}

TEST(CardinalityTest, InverseIsInvolution) {
  for (Cardinality c : kAll) {
    EXPECT_EQ(Inverse(Inverse(c)), c);
  }
  EXPECT_EQ(Inverse(Cardinality::kOneN), Cardinality::kNOne);
  EXPECT_EQ(Inverse(Cardinality::kOneOne), Cardinality::kOneOne);
  EXPECT_EQ(Inverse(Cardinality::kNM), Cardinality::kNM);
}

TEST(CardinalityTest, SidePredicates) {
  EXPECT_TRUE(LeftIsOne(Cardinality::kOneN));
  EXPECT_FALSE(RightIsOne(Cardinality::kOneN));
  EXPECT_TRUE(RightIsOne(Cardinality::kNOne));
  EXPECT_TRUE(LeftIsOne(Cardinality::kOneOne));
  EXPECT_TRUE(RightIsOne(Cardinality::kOneOne));
  EXPECT_FALSE(LeftIsOne(Cardinality::kNM));
  EXPECT_FALSE(RightIsOne(Cardinality::kNM));
}

TEST(CardinalityTest, FunctionalPredicates) {
  // N:1 means each left entity has one right entity: forward functional.
  EXPECT_TRUE(ForwardFunctional(Cardinality::kNOne));
  EXPECT_TRUE(ForwardFunctional(Cardinality::kOneOne));
  EXPECT_FALSE(ForwardFunctional(Cardinality::kOneN));
  EXPECT_TRUE(BackwardFunctional(Cardinality::kOneN));
  EXPECT_FALSE(BackwardFunctional(Cardinality::kNM));
}

TEST(ComposeTest, IdentityOfOneOne) {
  for (Cardinality c : kAll) {
    EXPECT_EQ(ComposeCardinality(Cardinality::kOneOne, c), c);
    EXPECT_EQ(ComposeCardinality(c, Cardinality::kOneOne), c);
  }
}

TEST(ComposeTest, PaperExamples) {
  // Relationship 3: department 1:N employee 1:N dependent => 1:N.
  EXPECT_EQ(ComposeCardinality({Cardinality::kOneN, Cardinality::kOneN}),
            Cardinality::kOneN);
  // Relationship 5: project N:1 department 1:N employee => N:M.
  EXPECT_EQ(ComposeCardinality({Cardinality::kNOne, Cardinality::kOneN}),
            Cardinality::kNM);
  // Relationship 4: department 1:N project N:M employee => N:M endpoint.
  EXPECT_EQ(ComposeCardinality({Cardinality::kOneN, Cardinality::kNM}),
            Cardinality::kNM);
  // N:1 then N:1 stays functional.
  EXPECT_EQ(ComposeCardinality({Cardinality::kNOne, Cardinality::kNOne}),
            Cardinality::kNOne);
}

TEST(ComposeTest, NMIsAbsorbing) {
  for (Cardinality c : kAll) {
    EXPECT_EQ(ComposeCardinality(Cardinality::kNM, c), Cardinality::kNM);
    EXPECT_EQ(ComposeCardinality(c, Cardinality::kNM), Cardinality::kNM);
  }
}

TEST(ComposeTest, Associative) {
  for (Cardinality a : kAll) {
    for (Cardinality b : kAll) {
      for (Cardinality c : kAll) {
        EXPECT_EQ(ComposeCardinality(ComposeCardinality(a, b), c),
                  ComposeCardinality(a, ComposeCardinality(b, c)));
      }
    }
  }
}

TEST(ComposeTest, InverseDistributesReversed) {
  // inv(a . b) == inv(b) . inv(a)
  for (Cardinality a : kAll) {
    for (Cardinality b : kAll) {
      EXPECT_EQ(Inverse(ComposeCardinality(a, b)),
                ComposeCardinality(Inverse(b), Inverse(a)));
    }
  }
}

TEST(FunctionalSequenceTest, PaperDefinition) {
  using C = Cardinality;
  // All Xi = 1.
  EXPECT_TRUE(IsFunctionalSequence({C::kOneN, C::kOneN}));
  // All Yi = 1.
  EXPECT_TRUE(IsFunctionalSequence({C::kNOne, C::kNOne}));
  // 1:1 counts toward either side.
  EXPECT_TRUE(IsFunctionalSequence({C::kOneOne, C::kOneN}));
  EXPECT_TRUE(IsFunctionalSequence({C::kNOne, C::kOneOne}));
  // Mixed directions are not functional.
  EXPECT_FALSE(IsFunctionalSequence({C::kNOne, C::kOneN}));
  EXPECT_FALSE(IsFunctionalSequence({C::kOneN, C::kNOne}));
  // Any N:M step breaks functionality.
  EXPECT_FALSE(IsFunctionalSequence({C::kOneN, C::kNM}));
  // Single steps are always functional-or-immediate; empty is functional.
  EXPECT_TRUE(IsFunctionalSequence({C::kNM}) == false);
  EXPECT_TRUE(IsFunctionalSequence({}));
  EXPECT_TRUE(IsFunctionalSequence({C::kOneN}));
}

TEST(FunctionalSequenceTest, EquivalentToNonNMComposition) {
  // The paper's functional definition coincides with "endpoint composition
  // is not N:M" for sequences without N:M steps... and in general
  // functional => composition != N:M.
  using C = Cardinality;
  std::vector<std::vector<C>> sequences = {
      {C::kOneN, C::kOneN},  {C::kNOne, C::kNOne}, {C::kNOne, C::kOneN},
      {C::kOneN, C::kNOne},  {C::kOneOne, C::kNM}, {C::kNM, C::kNM},
      {C::kOneN, C::kOneOne, C::kOneN},
  };
  for (const auto& seq : sequences) {
    if (IsFunctionalSequence(seq)) {
      EXPECT_NE(ComposeCardinality(seq), C::kNM);
    }
  }
}

TEST(TransitiveNMTest, PaperDefinition) {
  using C = Cardinality;
  // Relationship 5: X1=N, Yn=N.
  EXPECT_TRUE(IsTransitiveNM({C::kNOne, C::kOneN}));
  // Relationship 3: X1=1 -> not transitive N:M.
  EXPECT_FALSE(IsTransitiveNM({C::kOneN, C::kOneN}));
  // Relationship 4: X1=1 -> not transitive N:M (it is loose though).
  EXPECT_FALSE(IsTransitiveNM({C::kOneN, C::kNM}));
  // N:M then N:M: X1!=1 and Yn!=1.
  EXPECT_TRUE(IsTransitiveNM({C::kNM, C::kNM}));
  // Single steps never.
  EXPECT_FALSE(IsTransitiveNM({C::kNM}));
  EXPECT_FALSE(IsTransitiveNM({C::kNOne}));
}

TEST(LoosePointTest, CountsNMSteps) {
  using C = Cardinality;
  EXPECT_EQ(CountNMSteps({C::kOneN, C::kNM, C::kOneN, C::kNM}), 2u);
  EXPECT_EQ(CountNMSteps({C::kOneN}), 0u);
}

TEST(LoosePointTest, CountsHubPatterns) {
  using C = Cardinality;
  // N:1 followed by 1:N is the hub (paper relationship 5).
  EXPECT_EQ(CountHubPatterns({C::kNOne, C::kOneN}), 1u);
  // 1:N then N:1 is NOT a hub (the middle entity is on the N side).
  EXPECT_EQ(CountHubPatterns({C::kOneN, C::kNOne}), 0u);
  // Chained hubs: N:1 1:N ... each adjacent pair checked.
  EXPECT_EQ(CountHubPatterns({C::kNOne, C::kOneN, C::kNOne, C::kOneN}), 2u);
  EXPECT_EQ(CountHubPatterns({C::kNOne}), 0u);
}

TEST(LoosePointTest, TotalIsSum) {
  using C = Cardinality;
  std::vector<C> steps = {C::kNOne, C::kOneN, C::kNM};
  EXPECT_EQ(CountLoosePoints(steps),
            CountNMSteps(steps) + CountHubPatterns(steps));
  EXPECT_EQ(CountLoosePoints(steps), 2u);
}

TEST(LoosePointTest, FunctionalSequencesHaveNone) {
  using C = Cardinality;
  EXPECT_EQ(CountLoosePoints({C::kOneN, C::kOneN, C::kOneN}), 0u);
  EXPECT_EQ(CountLoosePoints({C::kNOne, C::kNOne}), 0u);
}

TEST(StepsToStringTest, Renders) {
  using C = Cardinality;
  EXPECT_EQ(StepsToString({C::kOneN, C::kNM}), "1:N N:M");
  EXPECT_EQ(StepsToString({}), "");
}

// Property sweep: classification consistency over all sequences of length
// <= 3.
class CardinalitySequenceProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CardinalitySequenceProperty, FunctionalNeverTransitiveNM) {
  auto [a, b, c] = GetParam();
  std::vector<Cardinality> seq{kAll[a], kAll[b], kAll[c]};
  if (IsFunctionalSequence(seq)) {
    EXPECT_FALSE(IsTransitiveNM(seq));
    EXPECT_EQ(CountLoosePoints(seq), 0u);
    EXPECT_NE(ComposeCardinality(seq), Cardinality::kNM);
  }
}

TEST_P(CardinalitySequenceProperty, TransitiveNMComposesToNM) {
  auto [a, b, c] = GetParam();
  std::vector<Cardinality> seq{kAll[a], kAll[b], kAll[c]};
  if (IsTransitiveNM(seq)) {
    EXPECT_EQ(ComposeCardinality(seq), Cardinality::kNM);
  }
}

TEST_P(CardinalitySequenceProperty, ReversalSymmetry) {
  auto [a, b, c] = GetParam();
  std::vector<Cardinality> seq{kAll[a], kAll[b], kAll[c]};
  std::vector<Cardinality> rev;
  for (auto it = seq.rbegin(); it != seq.rend(); ++it) {
    rev.push_back(Inverse(*it));
  }
  EXPECT_EQ(IsFunctionalSequence(seq), IsFunctionalSequence(rev));
  EXPECT_EQ(IsTransitiveNM(seq), IsTransitiveNM(rev));
  EXPECT_EQ(CountLoosePoints(seq), CountLoosePoints(rev));
  EXPECT_EQ(ComposeCardinality(rev),
            Inverse(ComposeCardinality(seq)));
}

INSTANTIATE_TEST_SUITE_P(
    AllTriples, CardinalitySequenceProperty,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(0, 4),
                       ::testing::Range(0, 4)));

}  // namespace
}  // namespace claks
