// Copyright 2026 The claks Authors.

#include "graph/steiner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>

#include "datasets/company_paper.h"
#include "graph/traversal.h"

namespace claks {
namespace {

class SteinerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    graph_ = std::make_unique<DataGraph>(dataset_.db.get());
  }

  uint32_t N(const std::string& name) {
    return graph_->NodeOf(PaperTuple(*dataset_.db, name));
  }

  // Checks the edge set is connected and acyclic over its node span.
  void ExpectIsTree(const SteinerTree& tree) {
    auto nodes = tree.Nodes(*graph_);
    if (nodes.size() <= 1) {
      EXPECT_TRUE(tree.edge_indices.empty());
      return;
    }
    EXPECT_EQ(tree.edge_indices.size(), nodes.size() - 1);
    // Connectivity via union-find.
    std::map<uint32_t, uint32_t> parent;
    for (uint32_t n : nodes) parent[n] = n;
    std::function<uint32_t(uint32_t)> find = [&](uint32_t x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    for (uint32_t e : tree.edge_indices) {
      const DataEdge& edge = graph_->edge(e);
      parent[find(graph_->NodeOf(edge.from))] =
          find(graph_->NodeOf(edge.to));
    }
    std::set<uint32_t> roots;
    for (uint32_t n : nodes) roots.insert(find(n));
    EXPECT_EQ(roots.size(), 1u);
  }

  CompanyPaperDataset dataset_;
  std::unique_ptr<DataGraph> graph_;
};

TEST_F(SteinerTest, SingleTerminal) {
  auto tree = ApproximateSteinerTree(*graph_, {N("d1")});
  ASSERT_TRUE(tree.has_value());
  EXPECT_TRUE(tree->edge_indices.empty());
  EXPECT_EQ(tree->weight, 0u);
}

TEST_F(SteinerTest, TwoTerminalsIsShortestPath) {
  auto tree = ApproximateSteinerTree(*graph_, {N("d1"), N("t1")});
  ASSERT_TRUE(tree.has_value());
  // Shortest d1..t1 path has 2 edges (d1-e3-t1).
  EXPECT_EQ(tree->weight, 2u);
  ExpectIsTree(*tree);
}

TEST_F(SteinerTest, ThreeTerminals) {
  auto tree =
      ApproximateSteinerTree(*graph_, {N("d1"), N("t1"), N("p1")});
  ASSERT_TRUE(tree.has_value());
  ExpectIsTree(*tree);
  auto nodes = tree->Nodes(*graph_);
  for (uint32_t t : {N("d1"), N("t1"), N("p1")}) {
    EXPECT_TRUE(std::find(nodes.begin(), nodes.end(), t) != nodes.end());
  }
}

TEST_F(SteinerTest, DisconnectedTerminalsFail) {
  EXPECT_FALSE(
      ApproximateSteinerTree(*graph_, {N("d1"), N("d3")}).has_value());
}

TEST_F(SteinerTest, DuplicateTerminalsCollapse) {
  auto tree =
      ApproximateSteinerTree(*graph_, {N("d1"), N("d1"), N("e1")});
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->terminals.size(), 2u);
  EXPECT_EQ(tree->weight, 1u);
}

TEST_F(SteinerTest, NoRedundantLeaves) {
  auto tree =
      ApproximateSteinerTree(*graph_, {N("e1"), N("e2")});
  ASSERT_TRUE(tree.has_value());
  ExpectIsTree(*tree);
  // Every leaf of the tree must be a terminal.
  std::map<uint32_t, size_t> degree;
  for (uint32_t e : tree->edge_indices) {
    const DataEdge& edge = graph_->edge(e);
    ++degree[graph_->NodeOf(edge.from)];
    ++degree[graph_->NodeOf(edge.to)];
  }
  std::set<uint32_t> terminals(tree->terminals.begin(),
                               tree->terminals.end());
  for (const auto& [node, d] : degree) {
    if (d == 1) {
      EXPECT_TRUE(terminals.count(node) > 0);
    }
  }
}

TEST_F(SteinerTest, EmptyTerminals) {
  auto tree = ApproximateSteinerTree(*graph_, {});
  ASSERT_TRUE(tree.has_value());
  EXPECT_TRUE(tree->terminals.empty());
}

}  // namespace
}  // namespace claks
