// Copyright 2026 The claks Authors.
//
// The concurrent query service: thread pool semantics (bounded-queue
// backpressure blocks, never drops), sharded-LRU cache accounting
// (hit/miss/eviction counts exact, also under contention), and
// SearchService end-to-end — N-thread submissions byte-identical to serial
// KeywordSearchEngine::Search for every search method, snapshot versioning
// under Mutate with old generations staying valid for in-flight readers.

#include "service/search_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "datasets/company_paper.h"
#include "service/result_cache.h"
#include "service/thread_pool.h"

namespace claks {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesEverySubmittedTask) {
  std::atomic<int> counter{0};
  ThreadPool pool(4, 16);
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Drain();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, DestructorCompletesQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2, 64);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // ~ThreadPool joins after draining the queue
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, BackpressureBlocksRatherThanDrops) {
  std::atomic<int> executed{0};
  std::atomic<bool> release{false};
  ThreadPool pool(1, 2);

  // Occupy the single worker until released.
  pool.Submit([&] {
    while (!release.load()) std::this_thread::yield();
    executed.fetch_add(1);
  });
  while (pool.pending() > 0) std::this_thread::yield();  // worker picked it up

  // Fill the bounded queue.
  pool.Submit([&] { executed.fetch_add(1); });
  pool.Submit([&] { executed.fetch_add(1); });
  EXPECT_EQ(pool.pending(), 2u);

  // Full queue: the non-blocking path refuses (and leaves the task with
  // the caller)...
  std::function<void()> extra = [&] { executed.fetch_add(1); };
  EXPECT_FALSE(pool.TrySubmit(extra));
  EXPECT_NE(extra, nullptr);

  // ...and the blocking path waits instead of dropping.
  std::atomic<bool> fourth_admitted{false};
  std::thread submitter([&] {
    pool.Submit([&] { executed.fetch_add(1); });
    fourth_admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(fourth_admitted.load());  // still blocked on the full queue

  release.store(true);  // worker drains; a slot frees; Submit completes
  submitter.join();
  EXPECT_TRUE(fourth_admitted.load());
  pool.Drain();
  EXPECT_EQ(executed.load(), 4);  // nothing was dropped
}

// ---------------------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------------------

std::shared_ptr<const SearchResult> DummyResult(const std::string& tag) {
  auto result = std::make_shared<SearchResult>();
  result->query.keywords = {tag};
  return result;
}

TEST(ResultCacheTest, HitMissEvictionAccountingIsExact) {
  ResultCache cache(/*capacity=*/2, /*num_shards=*/1);
  EXPECT_EQ(cache.Get("a"), nullptr);  // miss 1
  cache.Put("a", DummyResult("a"));
  cache.Put("b", DummyResult("b"));
  ASSERT_NE(cache.Get("a"), nullptr);  // hit 1; refreshes a over b
  cache.Put("c", DummyResult("c"));    // evicts b (LRU)
  EXPECT_EQ(cache.Get("b"), nullptr);  // miss 2
  ASSERT_NE(cache.Get("a"), nullptr);  // hit 2
  ASSERT_NE(cache.Get("c"), nullptr);  // hit 3

  ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.capacity, 2u);
}

TEST(ResultCacheTest, OverwritingAKeyIsNotAnEviction) {
  ResultCache cache(2, 1);
  cache.Put("a", DummyResult("a1"));
  cache.Put("a", DummyResult("a2"));
  ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 1u);
  auto got = cache.Get("a");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->query.keywords[0], "a2");
}

TEST(ResultCacheTest, ClearDropsEntriesButKeepsCounters) {
  ResultCache cache(4, 2);
  cache.Put("a", DummyResult("a"));
  EXPECT_NE(cache.Get("a"), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.Get("a"), nullptr);
  ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ResultCacheTest, EvictedSharedPtrStaysValidForHolders) {
  ResultCache cache(1, 1);
  cache.Put("a", DummyResult("a"));
  auto held = cache.Get("a");
  ASSERT_NE(held, nullptr);
  cache.Put("b", DummyResult("b"));  // evicts a
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(held->query.keywords[0], "a");  // caller's reference survives
}

TEST(ResultCacheTest, ConcurrentAccountingSumsExactly) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 500;
  // Per-shard capacity is total/shards = 32: even if std::hash sent every
  // one of the 32 distinct keys to a single shard, nothing could evict, so
  // the zero-eviction assertion below holds on any standard library.
  ResultCache cache(256, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::string key = "key-" + std::to_string((t * 7 + i) % 32);
        if (cache.Get(key) == nullptr) cache.Put(key, DummyResult(key));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  ResultCacheStats stats = cache.stats();
  // Every Get is counted exactly once, as a hit or a miss.
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  // 32 distinct keys never exceed any shard's 32 slots: no evictions.
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_LE(stats.entries, 32u);
}

// ---------------------------------------------------------------------------
// SearchService
// ---------------------------------------------------------------------------

std::unique_ptr<Database> PaperDb() {
  auto dataset = BuildCompanyPaperDataset();
  CLAKS_CHECK(dataset.ok());
  return std::move(dataset->db);
}

std::unique_ptr<SearchService> PaperService(ServiceOptions options) {
  auto dataset = BuildCompanyPaperDataset();
  CLAKS_CHECK(dataset.ok());
  auto service = SearchService::Create(
      std::move(dataset->db), std::move(dataset->er_schema),
      std::move(dataset->mapping), options);
  CLAKS_CHECK(service.ok());
  return std::move(service).ValueOrDie();
}

// The serial reference: an independent engine over an identical instance.
struct SerialReference {
  CompanyPaperDataset dataset;
  std::unique_ptr<KeywordSearchEngine> engine;
};

SerialReference MakeSerialReference() {
  SerialReference ref;
  auto dataset = BuildCompanyPaperDataset();
  CLAKS_CHECK(dataset.ok());
  ref.dataset = std::move(dataset).ValueOrDie();
  auto engine = KeywordSearchEngine::Create(ref.dataset.db.get(),
                                            ref.dataset.er_schema,
                                            ref.dataset.mapping);
  CLAKS_CHECK(engine.ok());
  ref.engine = std::move(engine).ValueOrDie();
  return ref;
}

// Byte-level result fingerprint: the rendered report plus every ranking-
// relevant field of every hit, in order.
std::string Fingerprint(const SearchResult& result, const Database& db) {
  std::string out = result.ToString(db, result.hits.size() + 1);
  for (const SearchHit& hit : result.hits) {
    out += hit.rendered + "|";
    out += std::to_string(hit.rdb_length) + "," +
           std::to_string(hit.er_length) + "," +
           std::to_string(static_cast<int>(hit.kind)) + "," +
           std::to_string(hit.hub_patterns) + "," +
           std::to_string(hit.nm_steps) + "," +
           (hit.schema_close ? "c" : "l") + "," +
           (hit.instance_close.has_value()
                ? (*hit.instance_close ? "i1" : "i0")
                : "i-") +
           "," + std::to_string(hit.text_score) + "," +
           std::to_string(hit.ambiguity) + ";";
  }
  return out;
}

TEST(SearchServiceTest, ConcurrentSubmitsMatchSerialForEveryMethod) {
  SerialReference ref = MakeSerialReference();

  ServiceOptions options;
  options.num_threads = 8;
  options.queue_capacity = 32;
  options.cache_capacity = 0;  // force every submission through Search
  std::unique_ptr<SearchService> service = PaperService(options);

  struct Case {
    SearchMethod method;
    const char* query;
  };
  const Case kCases[] = {
      {SearchMethod::kEnumerate, "smith xml"},
      {SearchMethod::kStream, "smith xml"},
      {SearchMethod::kMtjnt, "smith xml"},
      {SearchMethod::kDiscover, "smith xml"},
      {SearchMethod::kBanks, "smith xml"},
      {SearchMethod::kEnumerate, "alice"},
      {SearchMethod::kStream, "alice xml"},
      {SearchMethod::kMtjnt, "smith alice xml"},
  };

  for (const Case& c : kCases) {
    SearchOptions search;
    search.method = c.method;
    search.top_k = 10;

    auto serial = ref.engine->Search(c.query, search);
    ASSERT_TRUE(serial.ok()) << c.query;
    const std::string expected = Fingerprint(*serial, *ref.dataset.db);

    constexpr int kConcurrent = 16;
    std::vector<std::future<Result<SearchResult>>> futures;
    futures.reserve(kConcurrent);
    for (int i = 0; i < kConcurrent; ++i) {
      futures.push_back(service->Submit(c.query, search));
    }
    for (auto& future : futures) {
      Result<SearchResult> got = future.get();
      ASSERT_TRUE(got.ok()) << c.query;
      EXPECT_EQ(Fingerprint(*got, *ref.dataset.db), expected)
          << SearchMethodToString(c.method) << " '" << c.query << "'";
    }
  }
  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.submitted, stats.completed);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 0u);  // cache disabled
}

TEST(SearchServiceTest, CacheAccountingIsExact) {
  ServiceOptions options;
  options.num_threads = 4;
  options.cache_capacity = 64;
  std::unique_ptr<SearchService> service = PaperService(options);

  SearchOptions search;
  search.method = SearchMethod::kEnumerate;

  // First execution: one miss, result cached.
  auto first = service->SearchNow("smith xml", search);
  ASSERT_TRUE(first.ok());
  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_entries, 1u);

  // Every concurrent repeat is a hit (the entry already exists), and hits
  // return the identical bytes.
  constexpr int kConcurrent = 20;
  std::vector<std::future<Result<SearchResult>>> futures;
  for (int i = 0; i < kConcurrent; ++i) {
    futures.push_back(service->Submit("smith xml", search));
  }
  std::unique_ptr<Database> reference_db = PaperDb();
  const std::string expected = Fingerprint(*first, *reference_db);
  for (auto& future : futures) {
    auto got = future.get();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(Fingerprint(*got, *reference_db), expected);
  }

  stats = service->stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, static_cast<uint64_t>(kConcurrent));
  EXPECT_EQ(stats.cache_evictions, 0u);
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kConcurrent) + 1);
  EXPECT_EQ(stats.completed, stats.submitted);

  // The normalized key folds case/whitespace/punctuation differences.
  ASSERT_TRUE(service->SearchNow("  SMITH   xml. ", search).ok());
  stats = service->stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, static_cast<uint64_t>(kConcurrent) + 1);

  // A different option set is a different key.
  search.ranker = RankerKind::kRdbLength;
  ASSERT_TRUE(service->SearchNow("smith xml", search).ok());
  EXPECT_EQ(service->stats().cache_misses, 2u);
}

TEST(SearchServiceTest, EvictionAccountingIsExact) {
  ServiceOptions options;
  options.num_threads = 1;
  options.cache_capacity = 1;
  options.cache_shards = 1;
  std::unique_ptr<SearchService> service = PaperService(options);

  SearchOptions search;
  // Alternating distinct single-keyword queries through a 1-slot cache:
  // every lookup misses, every fill after the first evicts.
  const char* queries[] = {"smith", "xml", "smith", "xml", "smith"};
  for (const char* query : queries) {
    ASSERT_TRUE(service->SearchNow(query, search).ok());
  }
  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.cache_misses, 5u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_evictions, 4u);
  EXPECT_EQ(stats.cache_entries, 1u);
}

TEST(SearchServiceTest, BoundedQueueNeverDropsUnderBurst) {
  ServiceOptions options;
  options.num_threads = 2;
  options.queue_capacity = 2;  // tiny queue: submissions must block
  options.cache_capacity = 16;
  std::unique_ptr<SearchService> service = PaperService(options);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 25;
  std::atomic<int> ok_results{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&service, &ok_results] {
      SearchOptions search;
      for (int i = 0; i < kPerProducer; ++i) {
        auto result = service->Submit("smith xml", search).get();
        if (result.ok()) ok_results.fetch_add(1);
      }
    });
  }
  for (std::thread& producer : producers) producer.join();

  EXPECT_EQ(ok_results.load(), kProducers * kPerProducer);
  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.submitted,
            static_cast<uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.submitted);
}

TEST(SearchServiceTest, MutateSwapsSnapshotWhileOldOneStaysValid) {
  ServiceOptions options;
  options.num_threads = 2;
  options.cache_capacity = 16;
  std::unique_ptr<SearchService> service = PaperService(options);

  SearchOptions search;
  auto before = service->SearchNow("zyzzyx", search);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->hits.empty());
  EXPECT_EQ(service->snapshot()->version, 1u);

  // An in-flight reader: holds generation 1 across the mutation.
  std::shared_ptr<const EngineSnapshot> held = service->snapshot();

  Status mutated = service->Mutate([](Database* db) -> Status {
    Table* employees = db->FindMutableTable("EMPLOYEE");
    CLAKS_CHECK(employees != nullptr);
    return employees
        ->InsertValues({Value::String("e9"), Value::String("Zyzzyx"),
                        Value::String("Zed"), Value::String("d1")})
        .status();
  });
  ASSERT_TRUE(mutated.ok());
  EXPECT_EQ(service->snapshot()->version, 2u);

  // New submissions see the insert...
  auto after = service->SearchNow("zyzzyx", search);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->hits.size(), 1u);

  // ...while the held snapshot still answers from generation 1.
  EXPECT_EQ(held->version, 1u);
  auto old_result = held->engine->Search("zyzzyx", search);
  ASSERT_TRUE(old_result.ok());
  EXPECT_TRUE(old_result->hits.empty());

  // Cache keys embed the version: the same query against the new
  // generation is a fresh miss, never a stale hit.
  ServiceStats stats = service->stats();
  uint64_t misses_before = stats.cache_misses;
  auto repeat = service->SearchNow("zyzzyx", search);
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(repeat->hits.size(), 1u);
  EXPECT_EQ(service->stats().cache_misses, misses_before);  // cached at v2
}

TEST(SearchServiceTest, FailedMutationPublishesNothing) {
  std::unique_ptr<SearchService> service = PaperService({});
  EXPECT_EQ(service->snapshot()->version, 1u);
  Status failed = service->Mutate([](Database*) -> Status {
    return Status::InvalidArgument("intentional");
  });
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(service->snapshot()->version, 1u);
}

TEST(SearchServiceTest, ConcurrentQueriesAcrossMutations) {
  ServiceOptions options;
  options.num_threads = 4;
  options.queue_capacity = 8;
  options.cache_capacity = 32;
  std::unique_ptr<SearchService> service = PaperService(options);

  constexpr int kMutations = 3;
  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 30;
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&service, &failed] {
      SearchOptions search;
      for (int i = 0; i < kQueriesPerReader; ++i) {
        auto result = service->Submit("zyzzyx", search).get();
        if (!result.ok() ||
            result->hits.size() > static_cast<size_t>(kMutations)) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (int m = 0; m < kMutations; ++m) {
    std::string ssn = "e9" + std::to_string(m);
    Status mutated = service->Mutate([&ssn](Database* db) -> Status {
      return db->FindMutableTable("EMPLOYEE")
          ->InsertValues({Value::String(ssn), Value::String("Zyzzyx"),
                          Value::String("Zed"), Value::String("d1")})
          .status();
    });
    ASSERT_TRUE(mutated.ok());
  }
  for (std::thread& reader : readers) reader.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(service->snapshot()->version,
            static_cast<uint64_t>(kMutations) + 1);
  // The final generation answers with every inserted match.
  auto final_result = service->SearchNow("zyzzyx", {});
  ASSERT_TRUE(final_result.ok());
  EXPECT_EQ(final_result->hits.size(), static_cast<size_t>(kMutations));
}

TEST(SearchServiceTest, ReverseEngineeredSchemaPathWorks) {
  // The mapping-free Create overload recovers the conceptual schema from
  // the catalog on every snapshot build.
  auto service = SearchService::Create(PaperDb(), {});
  ASSERT_TRUE(service.ok());
  auto result = (*service)->SearchNow("smith xml", {});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->hits.empty());
}

TEST(SearchServiceTest, InvalidQueryResolvesToErrorFuture) {
  std::unique_ptr<SearchService> service = PaperService({});
  auto result = service->Submit("", {}).get();
  EXPECT_FALSE(result.ok());
  // Errors are not cached.
  EXPECT_EQ(service->stats().cache_entries, 0u);
}

}  // namespace
}  // namespace claks
