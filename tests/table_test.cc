// Copyright 2026 The claks Authors.

#include "relational/table.h"

#include <gtest/gtest.h>

namespace claks {
namespace {

Table MakeDeptTable() {
  return Table(TableSchema(
      "DEPARTMENT",
      {{"ID", ValueType::kString, false, false},
       {"NAME", ValueType::kString, false, true},
       {"HEADCOUNT", ValueType::kInt64, /*nullable=*/true, false}},
      {"ID"}));
}

TEST(TableTest, InsertAndRead) {
  Table t = MakeDeptTable();
  auto r = t.InsertValues(
      {Value::String("d1"), Value::String("cs"), Value::Int64(10)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0u);
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.at(0, 1).AsString(), "cs");
}

TEST(TableTest, RejectsArityMismatch) {
  Table t = MakeDeptTable();
  EXPECT_TRUE(t.InsertValues({Value::String("d1")})
                  .status()
                  .IsInvalidArgument());
}

TEST(TableTest, RejectsTypeMismatch) {
  Table t = MakeDeptTable();
  EXPECT_TRUE(t.InsertValues({Value::String("d1"), Value::Int64(3),
                              Value::Int64(10)})
                  .status()
                  .IsInvalidArgument());
}

TEST(TableTest, NullableRules) {
  Table t = MakeDeptTable();
  // HEADCOUNT nullable: OK.
  EXPECT_TRUE(t.InsertValues({Value::String("d1"), Value::String("cs"),
                              Value::Null()})
                  .ok());
  // NAME not nullable: rejected.
  EXPECT_TRUE(t.InsertValues({Value::String("d2"), Value::Null(),
                              Value::Null()})
                  .status()
                  .IsIntegrityViolation());
}

TEST(TableTest, RejectsDuplicatePrimaryKey) {
  Table t = MakeDeptTable();
  ASSERT_TRUE(t.InsertValues({Value::String("d1"), Value::String("a"),
                              Value::Null()})
                  .ok());
  EXPECT_TRUE(t.InsertValues({Value::String("d1"), Value::String("b"),
                              Value::Null()})
                  .status()
                  .IsIntegrityViolation());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, FindByPrimaryKey) {
  Table t = MakeDeptTable();
  ASSERT_TRUE(t.InsertValues({Value::String("d1"), Value::String("a"),
                              Value::Null()})
                  .ok());
  ASSERT_TRUE(t.InsertValues({Value::String("d2"), Value::String("b"),
                              Value::Null()})
                  .ok());
  EXPECT_EQ(t.FindByPrimaryKey({Value::String("d2")}), 1u);
  EXPECT_FALSE(t.FindByPrimaryKey({Value::String("zzz")}).has_value());
  EXPECT_FALSE(t.FindByPrimaryKey({}).has_value());
}

TEST(TableTest, CompositePrimaryKey) {
  Table t(TableSchema("WF",
                      {{"ESSN", ValueType::kString},
                       {"P_ID", ValueType::kString},
                       {"HOURS", ValueType::kInt64}},
                      {"ESSN", "P_ID"}));
  ASSERT_TRUE(t.InsertValues({Value::String("e1"), Value::String("p1"),
                              Value::Int64(40)})
                  .ok());
  // Same ESSN, different P_ID: allowed.
  EXPECT_TRUE(t.InsertValues({Value::String("e1"), Value::String("p2"),
                              Value::Int64(10)})
                  .ok());
  // Exact duplicate pair: rejected.
  EXPECT_FALSE(t.InsertValues({Value::String("e1"), Value::String("p1"),
                               Value::Int64(99)})
                   .ok());
  EXPECT_EQ(t.FindByPrimaryKey({Value::String("e1"), Value::String("p2")}),
            1u);
}

TEST(TableTest, FindRowsLinearScan) {
  Table t = MakeDeptTable();
  ASSERT_TRUE(t.InsertValues({Value::String("d1"), Value::String("x"),
                              Value::Int64(5)})
                  .ok());
  ASSERT_TRUE(t.InsertValues({Value::String("d2"), Value::String("x"),
                              Value::Int64(6)})
                  .ok());
  ASSERT_TRUE(t.InsertValues({Value::String("d3"), Value::String("y"),
                              Value::Int64(5)})
                  .ok());
  EXPECT_EQ(t.FindRows({1}, {Value::String("x")}),
            (std::vector<size_t>{0, 1}));
  EXPECT_EQ(t.FindRows({1, 2}, {Value::String("x"), Value::Int64(6)}),
            (std::vector<size_t>{1}));
  EXPECT_TRUE(t.FindRows({1}, {Value::String("zzz")}).empty());
}

TEST(TableTest, ToStringTruncates) {
  Table t = MakeDeptTable();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(t.InsertValues({Value::String("d" + std::to_string(i)),
                                Value::String("n"), Value::Null()})
                    .ok());
  }
  std::string s = t.ToString(/*max_rows=*/5);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

}  // namespace
}  // namespace claks
