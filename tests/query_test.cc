// Copyright 2026 The claks Authors.

#include "relational/query.h"

#include <gtest/gtest.h>

#include "datasets/company_paper.h"

namespace claks {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
  }
  CompanyPaperDataset dataset_;
};

TEST_F(QueryTest, FromTableQualifiesColumns) {
  Relation r = Relation::FromTable(*dataset_.db->FindTable("EMPLOYEE"));
  EXPECT_EQ(r.num_rows(), 4u);
  EXPECT_EQ(r.columns()[0].name, "EMPLOYEE.SSN");
  EXPECT_TRUE(r.ColumnIndex("EMPLOYEE.L_NAME").ok());
  EXPECT_TRUE(r.ColumnIndex("L_NAME").ok());  // unambiguous short name
  EXPECT_TRUE(r.ColumnIndex("NOPE").status().IsNotFound());
}

TEST_F(QueryTest, SelectEquality) {
  Relation employees =
      Relation::FromTable(*dataset_.db->FindTable("EMPLOYEE"));
  auto smiths =
      employees.Select("L_NAME", CompareOp::kEq, Value::String("Smith"));
  ASSERT_TRUE(smiths.ok());
  EXPECT_EQ(smiths->num_rows(), 2u);
}

TEST_F(QueryTest, SelectContains) {
  Relation departments =
      Relation::FromTable(*dataset_.db->FindTable("DEPARTMENT"));
  auto xml = departments.Select("D_DESCRIPTION", CompareOp::kContains,
                                Value::String("xml"));
  ASSERT_TRUE(xml.ok());
  EXPECT_EQ(xml->num_rows(), 2u);  // d1 and d2
}

TEST_F(QueryTest, SelectComparisons) {
  Relation wf = Relation::FromTable(*dataset_.db->FindTable("WORKS_FOR"));
  auto heavy = wf.Select("HOURS", CompareOp::kGe, Value::Int64(56));
  ASSERT_TRUE(heavy.ok());
  EXPECT_EQ(heavy->num_rows(), 3u);  // 56, 70, 60
  auto light = wf.Select("HOURS", CompareOp::kLt, Value::Int64(56));
  ASSERT_TRUE(light.ok());
  EXPECT_EQ(light->num_rows(), 1u);  // 40
}

TEST_F(QueryTest, ContainsRequiresStrings) {
  Relation wf = Relation::FromTable(*dataset_.db->FindTable("WORKS_FOR"));
  EXPECT_TRUE(wf.Select("HOURS", CompareOp::kContains, Value::String("4"))
                  .status()
                  .IsInvalidArgument());
}

TEST_F(QueryTest, Project) {
  Relation employees =
      Relation::FromTable(*dataset_.db->FindTable("EMPLOYEE"));
  auto names = employees.Project({"L_NAME", "S_NAME"});
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->num_columns(), 2u);
  EXPECT_EQ(names->num_rows(), 4u);
  EXPECT_TRUE(employees.Project({"NOPE"}).status().IsNotFound());
}

TEST_F(QueryTest, JoinEmployeeDepartment) {
  Relation employees =
      Relation::FromTable(*dataset_.db->FindTable("EMPLOYEE"));
  Relation departments =
      Relation::FromTable(*dataset_.db->FindTable("DEPARTMENT"));
  auto joined =
      employees.Join(departments, "EMPLOYEE.D_ID", "DEPARTMENT.ID");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->num_rows(), 4u);  // every employee has a department
  EXPECT_EQ(joined->num_columns(),
            employees.num_columns() + departments.num_columns());
}

TEST_F(QueryTest, DistinctRemovesDuplicates) {
  Relation employees =
      Relation::FromTable(*dataset_.db->FindTable("EMPLOYEE"));
  auto depts = employees.Project({"D_ID"});
  ASSERT_TRUE(depts.ok());
  Relation unique = depts->Distinct();
  EXPECT_EQ(unique.num_rows(), 2u);  // d1, d2
}

TEST_F(QueryTest, JoinAlongPathFollowsFks) {
  // EMPLOYEE - DEPARTMENT via the WORKS_FOR FK.
  auto r = JoinAlongPath(*dataset_.db, {"EMPLOYEE", "DEPARTMENT"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 4u);

  // PROJECT - WORKS_FOR - EMPLOYEE: middle relation chain.
  auto chain =
      JoinAlongPath(*dataset_.db, {"PROJECT", "WORKS_FOR", "EMPLOYEE"});
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->num_rows(), 4u);  // one row per works_for entry
}

TEST_F(QueryTest, JoinAlongPathRejectsNonAdjacent) {
  EXPECT_TRUE(JoinAlongPath(*dataset_.db, {"DEPARTMENT", "DEPENDENT"})
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(
      JoinAlongPath(*dataset_.db, {}).status().IsInvalidArgument());
}

TEST_F(QueryTest, EvalPredicateDirect) {
  const Table* employees = dataset_.db->FindTable("EMPLOYEE");
  Predicate pred{"L_NAME", CompareOp::kEq, Value::String("Smith")};
  auto hit = EvalPredicate(employees->schema(), employees->row(0), pred);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(*hit);
  auto miss = EvalPredicate(employees->schema(), employees->row(2), pred);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(*miss);
}

}  // namespace
}  // namespace claks
