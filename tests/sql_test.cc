// Copyright 2026 The claks Authors.

#include "core/sql.h"

#include <gtest/gtest.h>

#include <memory>

#include "datasets/company_paper.h"

namespace claks {
namespace {

class SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    graph_ = std::make_unique<DataGraph>(dataset_.db.get());
  }

  Connection Conn(const std::vector<std::string>& names) {
    std::vector<TupleId> tuples;
    std::vector<ConnectionEdge> edges;
    for (const auto& name : names) {
      tuples.push_back(PaperTuple(*dataset_.db, name));
    }
    for (size_t i = 0; i + 1 < tuples.size(); ++i) {
      for (const DataAdjacency& adj :
           graph_->Neighbors(graph_->NodeOf(tuples[i]))) {
        if (adj.neighbor == graph_->NodeOf(tuples[i + 1])) {
          const DataEdge& edge = graph_->edge(adj.edge_index);
          edges.push_back(ConnectionEdge{edge.fk_index, adj.along_fk != 0});
          break;
        }
      }
    }
    return Connection(std::move(tuples), std::move(edges));
  }

  CompanyPaperDataset dataset_;
  std::unique_ptr<DataGraph> graph_;
};

TEST(SqlLiteralTest, Quoting) {
  EXPECT_EQ(SqlLiteral(Value::String("xml")), "'xml'");
  EXPECT_EQ(SqlLiteral(Value::String("it's")), "'it''s'");
  EXPECT_EQ(SqlLiteral(Value::Int64(42)), "42");
  EXPECT_EQ(SqlLiteral(Value::Bool(true)), "TRUE");
  EXPECT_EQ(SqlLiteral(Value::Null()), "NULL");
}

TEST_F(SqlTest, SingleTupleSelect) {
  auto sql = ConnectionToSql(Conn({"d1"}), *dataset_.db);
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(*sql,
            "SELECT t0.* FROM DEPARTMENT t0 WHERE t0.ID = 'd1';");
}

TEST_F(SqlTest, TwoTupleJoin) {
  auto sql = ConnectionToSql(Conn({"d1", "e1"}), *dataset_.db);
  ASSERT_TRUE(sql.ok());
  // Pins both tuples and joins on the FK.
  EXPECT_NE(sql->find("FROM DEPARTMENT t0, EMPLOYEE t1"),
            std::string::npos);
  EXPECT_NE(sql->find("t0.ID = 'd1'"), std::string::npos);
  EXPECT_NE(sql->find("t1.SSN = 'e1'"), std::string::npos);
  EXPECT_NE(sql->find("t1.D_ID = t0.ID"), std::string::npos);
}

TEST_F(SqlTest, MiddleRelationJoinUsesCompositeKey) {
  auto sql = ConnectionToSql(Conn({"p1", "w_f1", "e1"}), *dataset_.db);
  ASSERT_TRUE(sql.ok());
  // w_f1 is pinned by its composite primary key.
  EXPECT_NE(sql->find("t1.ESSN = 'e1'"), std::string::npos);
  EXPECT_NE(sql->find("t1.P_ID = 'p1'"), std::string::npos);
  // Both join conditions appear.
  EXPECT_NE(sql->find("t1.P_ID = t0.ID"), std::string::npos);
  EXPECT_NE(sql->find("t1.ESSN = t2.SSN"), std::string::npos);
}

TEST_F(SqlTest, JoinDirectionIndependence) {
  // The same join condition regardless of travel direction.
  auto forward = ConnectionToSql(Conn({"d1", "e1"}), *dataset_.db);
  auto backward = ConnectionToSql(Conn({"e1", "d1"}), *dataset_.db);
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(backward.ok());
  EXPECT_NE(backward->find("t0.D_ID = t1.ID"), std::string::npos);
}

TEST_F(SqlTest, CandidateNetworkSql) {
  // CN: DEPARTMENT^{xml} <- EMPLOYEE^{smith} (EMPLOYEE references DEPT).
  CandidateNetwork cn;
  cn.nodes = {CnNode{*dataset_.db->TableIndex("DEPARTMENT"), 2},
              CnNode{*dataset_.db->TableIndex("EMPLOYEE"), 1}};
  CandidateNetwork::Edge edge;
  edge.a = 1;  // EMPLOYEE is the referencing side
  edge.b = 0;
  edge.fk_index = 0;
  edge.a_is_referencing = true;
  cn.edges.push_back(edge);

  auto sql = CandidateNetworkToSql(cn, *dataset_.db, {"smith", "xml"});
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_NE(sql->find("FROM DEPARTMENT t0, EMPLOYEE t1"),
            std::string::npos);
  // keyword bit 1 (xml) on node 0, bit 0 (smith) on node 1.
  EXPECT_NE(sql->find("LOWER(t0.D_NAME) LIKE '%xml%'"), std::string::npos);
  EXPECT_NE(sql->find("LOWER(t1.L_NAME) LIKE '%smith%'"),
            std::string::npos);
  EXPECT_NE(sql->find("t1.D_ID = t0.ID"), std::string::npos);
  // ID columns are non-searchable and must not appear in LIKE predicates.
  EXPECT_EQ(sql->find("LOWER(t0.ID)"), std::string::npos);
}

TEST_F(SqlTest, CandidateNetworkFreeNodeHasNoKeywordPredicate) {
  CandidateNetwork cn;
  cn.nodes = {CnNode{*dataset_.db->TableIndex("DEPARTMENT"), 1},
              CnNode{*dataset_.db->TableIndex("EMPLOYEE"), 0}};
  CandidateNetwork::Edge edge;
  edge.a = 1;
  edge.b = 0;
  edge.fk_index = 0;
  edge.a_is_referencing = true;
  cn.edges.push_back(edge);
  auto sql = CandidateNetworkToSql(cn, *dataset_.db, {"xml"});
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(sql->find("LOWER(t1."), std::string::npos);
}

TEST_F(SqlTest, CandidateNetworkRejectsUnsearchableTable) {
  // WORKS_FOR has no searchable text attribute; requiring a keyword there
  // must fail.
  CandidateNetwork cn;
  cn.nodes = {CnNode{*dataset_.db->TableIndex("WORKS_FOR"), 1}};
  auto sql = CandidateNetworkToSql(cn, *dataset_.db, {"xml"});
  EXPECT_TRUE(sql.status().IsInvalidArgument());
}

TEST_F(SqlTest, EmptyInputsRejected) {
  CandidateNetwork cn;
  EXPECT_TRUE(CandidateNetworkToSql(cn, *dataset_.db, {"x"})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace claks
