// Copyright 2026 The claks Authors.
//
// Randomized differential sweep for intra-query sharding: seeded-random
// QuerySpecs (method x ranker x top_k x AND/OR x page size) run through
// the prepared-query + cursor API against the 1x and 10x company_gen
// datasets, asserting that sharded execution is byte-identical to the
// unsharded engine — same hits, same ranking keys, same cursor page
// boundaries, same drain point. Every spec derives from one uint64 seed;
// a failure prints that seed and the repro line
// `CLAKS_DIFF_SEED=<seed> ./differential_test`.
//
// A second sweep hardens the incremental-mutation path: seeded-random
// insert/delete interleavings applied through SearchService::Mutate, the
// delta-derived snapshot after every batch compared byte-for-byte (same
// RunOutcome fingerprints) against an engine rebuilt from scratch over a
// clone of the same storage, at every shard count.
//
// Two further sweeps close the loop over the storage subsystem: the
// round-trip sweep runs every spec against an engine that was serialized
// to a snapshot file and mmap-loaded back, asserting byte-identical
// RunOutcome fingerprints against the in-memory original at every shard
// count; the snapshot-mutation sweep cold-starts a SearchService from
// that file and proves delta derivations on the frozen mmap'd base match
// engines rebuilt from scratch.
//
// Environment knobs (all optional):
//   CLAKS_DIFF_SEED            run exactly one seed instead of the sweep
//   CLAKS_DIFF_SPECS           number of specs in the sweep (default 200)
//   CLAKS_DIFF_MUTATION_SPECS  mutation scenarios (default 100)
//   CLAKS_DIFF_SNAPSHOT_SPECS  snapshot round-trip specs (default 100)
//   CLAKS_DIFF_SNAPSHOT_MUTATION_SPECS
//                              mutate-after-load scenarios (default 40)
//   CLAKS_TEST_SHARDS          force one shard count

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/random.h"
#include "core/cursor.h"
#include "core/engine.h"
#include "core/query_spec.h"
#include "datasets/company_gen.h"
#include "relational/database.h"
#include "service/search_service.h"
#include "storage/snapshot.h"

namespace claks {
namespace {

// ---------------------------------------------------------------------------
// Spec generation: everything derives from one seed
// ---------------------------------------------------------------------------

/// Query vocabulary of the company_gen topic/name pools
/// (src/datasets/company_gen.cc), plus one word matching nothing to
/// exercise AND-empties-the-result vs OR-drops-the-keyword.
const char* kVocabulary[] = {"xml",      "databases", "retrieval",
                             "networks", "security",  "indexing",
                             "ranking",  "Smith",     "Miller",
                             "Chen",     "unmatchablezzz"};

const SearchMethod kMethods[] = {SearchMethod::kStream,
                                 SearchMethod::kEnumerate,
                                 SearchMethod::kMtjnt,
                                 SearchMethod::kDiscover,
                                 SearchMethod::kBanks};

const RankerKind kRankers[] = {
    RankerKind::kRdbLength,     RankerKind::kErLength,
    RankerKind::kCloseFirst,    RankerKind::kLoosePenalty,
    RankerKind::kInstanceClose, RankerKind::kCombined,
    RankerKind::kAmbiguity,     RankerKind::kMoreContext};

struct DiffSpec {
  uint64_t seed = 0;
  bool big_dataset = false;  ///< 10x company_gen instead of 1x
  std::string query;
  SearchOptions options;
  /// Cyclic page-size schedule for cursor consumption.
  std::vector<size_t> page_sizes;

  std::string ToString() const {
    char buffer[256];
    std::string pages;
    for (size_t size : page_sizes) {
      if (!pages.empty()) pages += ",";
      pages += std::to_string(size);
    }
    std::snprintf(buffer, sizeof(buffer),
                  "seed=%llu dataset=%s query='%s' method=%s ranker=%s "
                  "top_k=%zu edges=%zu tmax=%zu and=%d pel=%zu pages=%s",
                  static_cast<unsigned long long>(seed),
                  big_dataset ? "10x" : "1x", query.c_str(),
                  SearchMethodToString(options.method),
                  RankerKindToString(options.ranker), options.top_k,
                  options.max_rdb_edges, options.tmax,
                  options.require_all_keywords ? 1 : 0,
                  options.per_endpoint_limit, pages.c_str());
    return buffer;
  }
};

DiffSpec MakeSpec(uint64_t seed) {
  Rng rng(seed);
  DiffSpec spec;
  spec.seed = seed;
  // Every 4th spec (on average) runs at 10x scale; the rest stay on the
  // small instance so the default 200-spec sweep finishes fast.
  spec.big_dataset = rng.Bernoulli(0.25);

  spec.options.method = kMethods[rng.Index(std::size(kMethods))];
  spec.options.ranker = kRankers[rng.Index(std::size(kRankers))];
  spec.options.max_rdb_edges = 2 + rng.Index(3);  // 2..4
  spec.options.tmax = 2 + rng.Index(2);           // 2..3
  spec.options.require_all_keywords = rng.Bernoulli(0.5);
  // kStream needs a positive top_k under the validated prepared API;
  // the materialized methods occasionally page the full result space.
  bool unlimited = spec.options.method != SearchMethod::kStream &&
                   !spec.big_dataset && rng.Bernoulli(0.2);
  spec.options.top_k = unlimited ? 0 : 1 + rng.Index(10);
  if (spec.options.method != SearchMethod::kBanks && rng.Bernoulli(0.3)) {
    spec.options.per_endpoint_limit = 1 + rng.Index(2);
  }
  if (rng.Bernoulli(0.3)) spec.options.instance_check = false;

  // Two distinct vocabulary words; the tree methods sometimes take a
  // third (kEnumerate/kStream are two-keyword methods).
  size_t first = rng.Index(std::size(kVocabulary));
  size_t second = rng.Index(std::size(kVocabulary) - 1);
  if (second >= first) ++second;
  spec.query = std::string(kVocabulary[first]) + " " + kVocabulary[second];
  bool tree_method = spec.options.method == SearchMethod::kMtjnt ||
                     spec.options.method == SearchMethod::kDiscover ||
                     spec.options.method == SearchMethod::kBanks;
  if (tree_method && rng.Bernoulli(0.3)) {
    size_t third = rng.Index(std::size(kVocabulary));
    spec.query += std::string(" ") + kVocabulary[third];
  }

  size_t schedule = 1 + rng.Index(3);
  for (size_t i = 0; i < schedule; ++i) {
    spec.page_sizes.push_back(1 + rng.Index(4));  // 1..4
  }
  return spec;
}

// ---------------------------------------------------------------------------
// One run: prepare, open, page to the end, fingerprint everything
// ---------------------------------------------------------------------------

std::string FormatDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Byte-comparable form of one hit: rendering, structural facts and the
/// exact ranking key under the spec's ranker.
std::string Fingerprint(const SearchHit& hit, const Ranker& ranker) {
  std::string out = hit.rendered;
  out += "|key=";
  for (double v : ranker.SortKey(hit.ToRankInput())) {
    out += FormatDouble(v);
    out += ",";
  }
  out += "|rdb=" + std::to_string(hit.rdb_length);
  out += "|er=" + std::to_string(hit.er_length);
  out += "|path=" + std::to_string(hit.connection.has_value() ? 1 : 0);
  out += "|text=" + FormatDouble(hit.text_score);
  out += "|amb=" + FormatDouble(hit.ambiguity);
  if (hit.instance_close.has_value()) {
    out += "|ic=" + std::to_string(*hit.instance_close ? 1 : 0);
  }
  return out;
}

/// Everything a run exposes that must be shard-invariant. Pages keep
/// their boundaries (a vector per Next call), so a merge that slips one
/// hit across a page edge fails even when the concatenation matches.
struct RunOutcome {
  bool prepare_ok = false;
  std::string prepare_error;
  std::vector<std::vector<std::string>> pages;
  std::vector<bool> drained_after;  ///< Drained() after each page
  size_t returned = 0;

  bool operator==(const RunOutcome& other) const {
    return prepare_ok == other.prepare_ok &&
           prepare_error == other.prepare_error && pages == other.pages &&
           drained_after == other.drained_after &&
           returned == other.returned;
  }

  std::string ToString() const {
    if (!prepare_ok) return "prepare failed: " + prepare_error;
    std::string out = "returned=" + std::to_string(returned);
    for (size_t p = 0; p < pages.size(); ++p) {
      out += "\n  page " + std::to_string(p) +
             (drained_after[p] ? " (drained)" : "") + ":";
      for (const std::string& hit : pages[p]) out += "\n    " + hit;
    }
    return out;
  }
};

RunOutcome RunSpec(const KeywordSearchEngine& engine, const DiffSpec& spec,
                   size_t shards) {
  RunOutcome outcome;
  SearchOptions options = spec.options;
  options.shards = shards;
  auto prepared = engine.Prepare(spec.query, options);
  if (!prepared.ok()) {
    // A prepare failure must reproduce identically under every shard
    // count; record it instead of aborting the comparison.
    outcome.prepare_error = prepared.status().message();
    return outcome;
  }
  outcome.prepare_ok = true;
  auto cursor = prepared->Open();
  if (!cursor.ok()) {
    outcome.prepare_ok = false;
    outcome.prepare_error = cursor.status().message();
    return outcome;
  }
  auto ranker = MakeRanker(spec.options.ranker);
  constexpr size_t kMaxPages = 4096;
  for (size_t page_index = 0; page_index < kMaxPages; ++page_index) {
    size_t size = spec.page_sizes[page_index % spec.page_sizes.size()];
    auto page = (*cursor)->Next(size);
    if (!page.ok()) {
      outcome.prepare_ok = false;
      outcome.prepare_error = page.status().message();
      return outcome;
    }
    std::vector<std::string> fingerprints;
    for (const SearchHit& hit : *page) {
      fingerprints.push_back(Fingerprint(hit, *ranker));
    }
    bool empty = fingerprints.empty();
    outcome.pages.push_back(std::move(fingerprints));
    outcome.drained_after.push_back((*cursor)->Drained());
    if ((*cursor)->Drained() || empty) break;
  }
  outcome.returned = (*cursor)->Stats().returned;
  return outcome;
}

// ---------------------------------------------------------------------------
// The sweep
// ---------------------------------------------------------------------------

size_t EnvCount(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<size_t>(std::strtoull(value, nullptr, 10));
}

/// Both engines, built once for the whole suite.
struct Engines {
  GeneratedDataset small_data;
  GeneratedDataset big_data;
  std::unique_ptr<KeywordSearchEngine> small_engine;
  std::unique_ptr<KeywordSearchEngine> big_engine;
};

Engines* BuildEngines() {
  auto engines = std::make_unique<Engines>();
  auto small = GenerateCompanyDataset(CompanyGenOptions::AtScale(1));
  CLAKS_CHECK(small.ok());
  engines->small_data = std::move(small).ValueOrDie();
  auto big = GenerateCompanyDataset(CompanyGenOptions::AtScale(10));
  CLAKS_CHECK(big.ok());
  engines->big_data = std::move(big).ValueOrDie();
  auto small_engine = KeywordSearchEngine::Create(
      engines->small_data.db.get(), engines->small_data.er_schema,
      engines->small_data.mapping);
  CLAKS_CHECK(small_engine.ok());
  engines->small_engine = std::move(small_engine).ValueOrDie();
  auto big_engine = KeywordSearchEngine::Create(
      engines->big_data.db.get(), engines->big_data.er_schema,
      engines->big_data.mapping);
  CLAKS_CHECK(big_engine.ok());
  engines->big_engine = std::move(big_engine).ValueOrDie();
  return engines.release();
}

const Engines& GetEngines() {
  static Engines* engines = BuildEngines();
  return *engines;
}

TEST(DifferentialTest, ShardedExecutionIsByteIdentical) {
  constexpr uint64_t kBaseSeed = 0x5eed0000;
  std::vector<uint64_t> seeds;
  if (const char* forced = std::getenv("CLAKS_DIFF_SEED")) {
    seeds.push_back(std::strtoull(forced, nullptr, 10));
  } else {
    size_t count = EnvCount("CLAKS_DIFF_SPECS", 200);
    for (size_t i = 0; i < count; ++i) seeds.push_back(kBaseSeed + i);
  }
  std::vector<size_t> shard_counts = {2, 4};
  if (std::getenv("CLAKS_TEST_SHARDS") != nullptr) {
    shard_counts = {EnvCount("CLAKS_TEST_SHARDS", 2)};
    ASSERT_GT(shard_counts[0], 0u);
  }

  for (uint64_t seed : seeds) {
    DiffSpec spec = MakeSpec(seed);
    const KeywordSearchEngine& engine = spec.big_dataset
                                            ? *GetEngines().big_engine
                                            : *GetEngines().small_engine;
    RunOutcome unsharded = RunSpec(engine, spec, /*shards=*/1);
    for (size_t shards : shard_counts) {
      RunOutcome sharded = RunSpec(engine, spec, shards);
      if (!(sharded == unsharded)) {
        ADD_FAILURE() << "sharded run diverged from unsharded\n"
                      << "spec: " << spec.ToString() << "\n"
                      << "shards=" << shards << "\n"
                      << "unsharded: " << unsharded.ToString() << "\n"
                      << "sharded:   " << sharded.ToString() << "\n"
                      << "reproduce: CLAKS_DIFF_SEED=" << seed
                      << " ./differential_test";
        // One divergence prints in full; stop instead of spamming the
        // log with every later seed's diff.
        return;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Mutation-sequence mode: delta-derived snapshots vs cold rebuilds
// ---------------------------------------------------------------------------

/// Inserts one schema-valid random row into a random table: FK attributes
/// copy the key of a random live parent row, other PK attributes get a
/// fresh unique value, the rest draw from the query vocabulary (so
/// mutations move keyword matches around). Returns false when no valid
/// insert exists (empty parent, PK collision).
bool TryRandomInsert(Database* db, Rng* rng, uint64_t* unique_counter) {
  uint32_t t = static_cast<uint32_t>(rng->Index(db->num_tables()));
  Table* tab = db->FindMutableTable(db->table(t).name());
  CLAKS_CHECK(tab != nullptr);
  const TableSchema& schema = tab->schema();
  std::vector<Value> values(schema.num_attributes(), Value::Null());
  std::set<size_t> fk_attrs;
  for (const ForeignKeyDef& fk : schema.foreign_keys()) {
    const Table* parent = db->FindTable(fk.referenced_table);
    if (parent == nullptr || parent->live_rows() == 0) return false;
    size_t target = rng->Index(parent->live_rows());
    size_t parent_row = parent->num_rows();
    for (size_t r = 0, live = 0; r < parent->num_rows(); ++r) {
      if (parent->IsDeleted(r)) continue;
      if (live++ == target) {
        parent_row = r;
        break;
      }
    }
    CLAKS_CHECK(parent_row < parent->num_rows());
    for (size_t k = 0; k < fk.local_attributes.size(); ++k) {
      auto local = schema.AttributeIndex(fk.local_attributes[k]);
      auto referenced =
          parent->schema().AttributeIndex(fk.referenced_attributes[k]);
      if (!local.has_value() || !referenced.has_value()) return false;
      values[*local] = parent->row(parent_row)[*referenced];
      fk_attrs.insert(*local);
    }
  }
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (fk_attrs.count(i) > 0) continue;
    const AttributeDef& attr = schema.attribute(i);
    if (schema.IsPrimaryKeyAttribute(attr.name)) {
      values[i] = Value::String("mut" + std::to_string((*unique_counter)++));
    } else if (attr.type == ValueType::kInt64) {
      values[i] = Value::Int64(static_cast<int64_t>(1 + rng->Index(50)));
    } else {
      values[i] =
          Value::String(kVocabulary[rng->Index(std::size(kVocabulary))]);
    }
  }
  // WORKS_ON-style tables key on their FK pair: a random parent choice can
  // collide with an existing live row, which would be a PK violation.
  std::vector<size_t> pk_indices = schema.PrimaryKeyIndices();
  Row key;
  for (size_t idx : pk_indices) key.push_back(values[idx]);
  if (!tab->FindRows(pk_indices, key).empty()) return false;
  return tab->InsertValues(std::move(values)).ok();
}

/// True when any live row of any table references `row` of `tab`.
bool RowIsReferenced(const Database& db, const Table& tab, size_t row) {
  std::vector<size_t> pk_indices = tab.schema().PrimaryKeyIndices();
  Row key;
  for (size_t idx : pk_indices) key.push_back(tab.row(row)[idx]);
  for (uint32_t u = 0; u < db.num_tables(); ++u) {
    const Table& child = db.table(u);
    for (const ForeignKeyDef& fk : child.schema().foreign_keys()) {
      if (fk.referenced_table != tab.name()) continue;
      std::vector<size_t> local;
      for (const std::string& name : fk.local_attributes) {
        auto idx = child.schema().AttributeIndex(name);
        CLAKS_CHECK(idx.has_value());
        local.push_back(*idx);
      }
      if (!child.FindRows(local, key).empty()) return true;
    }
  }
  return false;
}

/// Tombstones one random live, unreferenced row (RESTRICT semantics keep
/// referenced rows undeletable). Returns false when the chosen table has
/// no deletable row.
bool TryRandomDelete(Database* db, Rng* rng) {
  uint32_t t = static_cast<uint32_t>(rng->Index(db->num_tables()));
  Table* tab = db->FindMutableTable(db->table(t).name());
  CLAKS_CHECK(tab != nullptr);
  if (tab->live_rows() == 0) return false;
  size_t start = rng->Index(tab->num_rows());
  for (size_t step = 0; step < tab->num_rows(); ++step) {
    size_t r = (start + step) % tab->num_rows();
    if (tab->IsDeleted(r)) continue;
    if (RowIsReferenced(*db, *tab, r)) continue;
    return tab->Delete(r).ok();
  }
  return false;
}

/// One op, insert-biased; falls back to the other kind when the first
/// choice has no valid move.
void ApplyRandomOp(Database* db, Rng* rng, uint64_t* unique_counter) {
  bool insert = rng->Bernoulli(0.65);
  for (int attempt = 0; attempt < 2; ++attempt, insert = !insert) {
    if (insert ? TryRandomInsert(db, rng, unique_counter)
               : TryRandomDelete(db, rng)) {
      return;
    }
  }
}

DeltaPolicy RandomPolicy(Rng* rng) {
  DeltaPolicy policy;
  switch (rng->Index(3)) {
    case 0:
      policy.mode = DeltaPolicy::Mode::kAuto;
      policy.min_ops = 1 + rng->Index(6);
      policy.fraction = 0.0;
      break;
    case 1:
      policy.mode = DeltaPolicy::Mode::kNeverCompact;
      break;
    default:
      policy.mode = DeltaPolicy::Mode::kAlwaysCompact;
      break;
  }
  return policy;
}

TEST(DifferentialTest, DeltaMutationSequencesMatchColdRebuild) {
  constexpr uint64_t kBaseSeed = 0xd317a000;
  std::vector<uint64_t> seeds;
  if (const char* forced = std::getenv("CLAKS_DIFF_SEED")) {
    seeds.push_back(std::strtoull(forced, nullptr, 10));
  } else {
    size_t count = EnvCount("CLAKS_DIFF_MUTATION_SPECS", 100);
    for (size_t i = 0; i < count; ++i) seeds.push_back(kBaseSeed + i);
  }
  std::vector<size_t> shard_counts = {1, 2, 4};
  if (std::getenv("CLAKS_TEST_SHARDS") != nullptr) {
    shard_counts = {EnvCount("CLAKS_TEST_SHARDS", 1)};
    ASSERT_GT(shard_counts[0], 0u);
  }

  const GeneratedDataset& master = GetEngines().small_data;
  for (uint64_t seed : seeds) {
    // The query spec and the mutation stream derive from the same seed;
    // the spec's dataset flag is ignored (mutations run on the 1x clone).
    DiffSpec spec = MakeSpec(seed);
    Rng rng(seed ^ 0x5ca1ab1eu);

    ServiceOptions options;
    options.num_threads = 1;
    options.cache_capacity = 0;
    options.delta_policy = RandomPolicy(&rng);
    auto created = SearchService::Create(master.db->Clone(),
                                         master.er_schema, master.mapping,
                                         options);
    ASSERT_TRUE(created.ok());
    std::unique_ptr<SearchService> service =
        std::move(created).ValueOrDie();

    uint64_t unique_counter = 0;
    size_t batches = 1 + rng.Index(3);
    for (size_t batch = 0; batch < batches; ++batch) {
      size_t ops = 1 + rng.Index(6);
      Status applied = service->Mutate([&](Database* db) {
        for (size_t op = 0; op < ops; ++op) {
          ApplyRandomOp(db, &rng, &unique_counter);
        }
        return Status::OK();
      });
      ASSERT_TRUE(applied.ok()) << applied.message();

      // Cold rebuild over a clone of the published snapshot's storage:
      // identical slot layout, engine built from scratch.
      std::shared_ptr<const EngineSnapshot> snapshot = service->snapshot();
      std::unique_ptr<Database> rebuilt_db = snapshot->db->Clone();
      auto rebuilt = KeywordSearchEngine::Create(
          rebuilt_db.get(), master.er_schema, master.mapping);
      ASSERT_TRUE(rebuilt.ok());

      for (size_t shards : shard_counts) {
        RunOutcome derived_run = RunSpec(*snapshot->engine, spec, shards);
        RunOutcome rebuilt_run = RunSpec(**rebuilt, spec, shards);
        if (!(derived_run == rebuilt_run)) {
          ADD_FAILURE()
              << "delta-derived snapshot diverged from cold rebuild\n"
              << "spec: " << spec.ToString() << "\n"
              << "batch=" << batch << " shards=" << shards << "\n"
              << "derived: " << derived_run.ToString() << "\n"
              << "rebuilt: " << rebuilt_run.ToString() << "\n"
              << "reproduce: CLAKS_DIFF_SEED=" << seed
              << " ./differential_test --gtest_filter="
                 "DifferentialTest.DeltaMutationSequencesMatchColdRebuild";
          return;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Snapshot round-trip mode: mmap-loaded engines vs in-memory originals
// ---------------------------------------------------------------------------

/// Both suite engines serialized to snapshot files and mmap-loaded back,
/// built once. The LoadedEngine members keep the mmap'd files alive for
/// the whole process, so every zero-copy view stays valid.
struct SnapshotEngines {
  std::filesystem::path dir;
  std::string small_path;
  std::string big_path;
  LoadedEngine small_loaded;
  LoadedEngine big_loaded;
};

SnapshotEngines* BuildSnapshotEngines() {
  auto out = std::make_unique<SnapshotEngines>();
  out->dir = std::filesystem::temp_directory_path() /
             ("claks_diff_snapshot_" + std::to_string(::getpid()));
  std::filesystem::create_directories(out->dir);
  out->small_path = (out->dir / "small.claks").string();
  out->big_path = (out->dir / "big.claks").string();
  // Save requires warm engines; Warmup is idempotent and, by design,
  // result-invariant (the warm-identity unit tests pin that down).
  const Engines& engines = GetEngines();
  engines.small_engine->Warmup();
  engines.big_engine->Warmup();
  CLAKS_CHECK(engines.small_engine->SaveSnapshot(out->small_path).ok());
  CLAKS_CHECK(engines.big_engine->SaveSnapshot(out->big_path).ok());
  auto small = KeywordSearchEngine::LoadSnapshot(out->small_path);
  CLAKS_CHECK(small.ok());
  out->small_loaded = std::move(small).ValueOrDie();
  auto big = KeywordSearchEngine::LoadSnapshot(out->big_path);
  CLAKS_CHECK(big.ok());
  out->big_loaded = std::move(big).ValueOrDie();
  return out.release();
}

const SnapshotEngines& GetSnapshotEngines() {
  static SnapshotEngines* engines = BuildSnapshotEngines();
  return *engines;
}

TEST(DifferentialTest, SnapshotRoundTripIsByteIdentical) {
  constexpr uint64_t kBaseSeed = 0x5a9e0000;
  std::vector<uint64_t> seeds;
  if (const char* forced = std::getenv("CLAKS_DIFF_SEED")) {
    seeds.push_back(std::strtoull(forced, nullptr, 10));
  } else {
    size_t count = EnvCount("CLAKS_DIFF_SNAPSHOT_SPECS", 100);
    for (size_t i = 0; i < count; ++i) seeds.push_back(kBaseSeed + i);
  }
  std::vector<size_t> shard_counts = {1, 2, 4};
  if (std::getenv("CLAKS_TEST_SHARDS") != nullptr) {
    shard_counts = {EnvCount("CLAKS_TEST_SHARDS", 1)};
    ASSERT_GT(shard_counts[0], 0u);
  }

  for (uint64_t seed : seeds) {
    DiffSpec spec = MakeSpec(seed);
    const KeywordSearchEngine& in_memory = spec.big_dataset
                                               ? *GetEngines().big_engine
                                               : *GetEngines().small_engine;
    const KeywordSearchEngine& loaded =
        spec.big_dataset ? *GetSnapshotEngines().big_loaded.engine
                         : *GetSnapshotEngines().small_loaded.engine;
    for (size_t shards : shard_counts) {
      RunOutcome memory_run = RunSpec(in_memory, spec, shards);
      RunOutcome loaded_run = RunSpec(loaded, spec, shards);
      if (!(loaded_run == memory_run)) {
        ADD_FAILURE() << "mmap-loaded engine diverged from the original\n"
                      << "spec: " << spec.ToString() << "\n"
                      << "shards=" << shards << "\n"
                      << "in-memory: " << memory_run.ToString() << "\n"
                      << "loaded:    " << loaded_run.ToString() << "\n"
                      << "reproduce: CLAKS_DIFF_SEED=" << seed
                      << " ./differential_test --gtest_filter="
                         "DifferentialTest.SnapshotRoundTripIsByteIdentical";
        return;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Snapshot-mutation mode: delta derivations on the frozen mmap'd base
// ---------------------------------------------------------------------------

TEST(DifferentialTest, MutationsAfterSnapshotLoadMatchColdRebuild) {
  constexpr uint64_t kBaseSeed = 0x10ad0000;
  std::vector<uint64_t> seeds;
  if (const char* forced = std::getenv("CLAKS_DIFF_SEED")) {
    seeds.push_back(std::strtoull(forced, nullptr, 10));
  } else {
    size_t count = EnvCount("CLAKS_DIFF_SNAPSHOT_MUTATION_SPECS", 40);
    for (size_t i = 0; i < count; ++i) seeds.push_back(kBaseSeed + i);
  }
  std::vector<size_t> shard_counts = {1, 2, 4};
  if (std::getenv("CLAKS_TEST_SHARDS") != nullptr) {
    shard_counts = {EnvCount("CLAKS_TEST_SHARDS", 1)};
    ASSERT_GT(shard_counts[0], 0u);
  }

  const std::string& path = GetSnapshotEngines().small_path;
  const GeneratedDataset& master = GetEngines().small_data;
  for (uint64_t seed : seeds) {
    DiffSpec spec = MakeSpec(seed);
    Rng rng(seed ^ 0xf11e5eedULL);

    ServiceOptions options;
    options.num_threads = 1;
    options.cache_capacity = 0;
    // Never compact: every batch must delta-derive directly on top of
    // the zero-copy views into the mmap'd file, the path this sweep is
    // here to prove.
    options.delta_policy.mode = DeltaPolicy::Mode::kNeverCompact;
    auto created = SearchService::CreateFromSnapshot(path, options);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    std::unique_ptr<SearchService> service = std::move(created).ValueOrDie();

    uint64_t unique_counter = 0;
    size_t batches = 1 + rng.Index(3);
    for (size_t batch = 0; batch < batches; ++batch) {
      size_t ops = 1 + rng.Index(6);
      Status applied = service->Mutate([&](Database* db) {
        for (size_t op = 0; op < ops; ++op) {
          ApplyRandomOp(db, &rng, &unique_counter);
        }
        return Status::OK();
      });
      ASSERT_TRUE(applied.ok()) << applied.message();

      std::shared_ptr<const EngineSnapshot> snapshot = service->snapshot();
      std::unique_ptr<Database> rebuilt_db = snapshot->db->Clone();
      auto rebuilt = KeywordSearchEngine::Create(
          rebuilt_db.get(), master.er_schema, master.mapping);
      ASSERT_TRUE(rebuilt.ok());

      for (size_t shards : shard_counts) {
        RunOutcome derived_run = RunSpec(*snapshot->engine, spec, shards);
        RunOutcome rebuilt_run = RunSpec(**rebuilt, spec, shards);
        if (!(derived_run == rebuilt_run)) {
          ADD_FAILURE()
              << "mutation on the mmap'd base diverged from cold rebuild\n"
              << "spec: " << spec.ToString() << "\n"
              << "batch=" << batch << " shards=" << shards << "\n"
              << "derived: " << derived_run.ToString() << "\n"
              << "rebuilt: " << rebuilt_run.ToString() << "\n"
              << "reproduce: CLAKS_DIFF_SEED=" << seed
              << " ./differential_test --gtest_filter="
                 "DifferentialTest.MutationsAfterSnapshotLoadMatchColdRebuild";
          return;
        }
      }
    }
  }
}

}  // namespace
}  // namespace claks
