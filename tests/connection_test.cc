// Copyright 2026 The claks Authors.

#include "core/connection.h"

#include <gtest/gtest.h>

#include <memory>

#include "datasets/company_paper.h"
#include "graph/traversal.h"

namespace claks {
namespace {

class ConnectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    graph_ = std::make_unique<DataGraph>(dataset_.db.get());
  }

  uint32_t N(const std::string& name) {
    return graph_->NodeOf(PaperTuple(*dataset_.db, name));
  }

  // Builds the connection along the given paper tuples (adjacent in the
  // data graph).
  Connection Conn(const std::vector<std::string>& names) {
    std::vector<TupleId> tuples;
    std::vector<ConnectionEdge> edges;
    for (const auto& name : names) {
      tuples.push_back(PaperTuple(*dataset_.db, name));
    }
    for (size_t i = 0; i + 1 < tuples.size(); ++i) {
      uint32_t a = graph_->NodeOf(tuples[i]);
      bool found = false;
      for (const DataAdjacency& adj : graph_->Neighbors(a)) {
        if (adj.neighbor == graph_->NodeOf(tuples[i + 1])) {
          const DataEdge& edge = graph_->edge(adj.edge_index);
          edges.push_back(ConnectionEdge{edge.fk_index, adj.along_fk != 0});
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << names[i] << " - " << names[i + 1];
    }
    return Connection(std::move(tuples), std::move(edges));
  }

  CompanyPaperDataset dataset_;
  std::unique_ptr<DataGraph> graph_;
};

TEST_F(ConnectionTest, FromNodePath) {
  auto path = ShortestPath(*graph_, N("d1"), N("t1"));
  ASSERT_TRUE(path.has_value());
  Connection conn = Connection::FromNodePath(*graph_, *path);
  EXPECT_EQ(conn.RdbLength(), 2u);
  EXPECT_EQ(conn.front(), PaperTuple(*dataset_.db, "d1"));
  EXPECT_EQ(conn.back(), PaperTuple(*dataset_.db, "t1"));
  EXPECT_TRUE(conn.ContainsTuple(PaperTuple(*dataset_.db, "e3")));
  EXPECT_FALSE(conn.ContainsTuple(PaperTuple(*dataset_.db, "e1")));
}

TEST_F(ConnectionTest, SingleTupleConnection) {
  Connection conn({PaperTuple(*dataset_.db, "d1")}, {});
  EXPECT_EQ(conn.RdbLength(), 0u);
  EXPECT_EQ(conn.front(), conn.back());
  EXPECT_TRUE(conn.RdbCardinalitySequence().empty());
}

TEST_F(ConnectionTest, RdbCardinalitySequencePaperConnection1) {
  // d1 - e1: traversal against e1's FK => 1:N.
  Connection conn = Conn({"d1", "e1"});
  EXPECT_EQ(conn.RdbCardinalitySequence(),
            (std::vector<Cardinality>{Cardinality::kOneN}));
}

TEST_F(ConnectionTest, RdbCardinalitySequencePaperConnection2) {
  // p1 - w_f1 - e1: "p1(XML) 1:N w_f1 N:1 e1(Smith)" (paper Table 3).
  Connection conn = Conn({"p1", "w_f1", "e1"});
  EXPECT_EQ(conn.RdbCardinalitySequence(),
            (std::vector<Cardinality>{Cardinality::kOneN,
                                      Cardinality::kNOne}));
}

TEST_F(ConnectionTest, RdbCardinalitySequencePaperConnection9) {
  // d2 1:N p2 1:N w_f3 N:1 e3 1:N t1 (paper Table 3, row 9).
  Connection conn = Conn({"d2", "p2", "w_f3", "e3", "t1"});
  using C = Cardinality;
  EXPECT_EQ(conn.RdbCardinalitySequence(),
            (std::vector<C>{C::kOneN, C::kOneN, C::kNOne, C::kOneN}));
}

TEST_F(ConnectionTest, ReversedInvertsEverything) {
  Connection conn = Conn({"p1", "w_f1", "e1"});
  Connection rev = conn.Reversed();
  EXPECT_EQ(rev.front(), conn.back());
  EXPECT_EQ(rev.back(), conn.front());
  using C = Cardinality;
  EXPECT_EQ(rev.RdbCardinalitySequence(),
            (std::vector<C>{C::kOneN, C::kNOne}));
  EXPECT_EQ(rev.Reversed(), conn);
}

TEST_F(ConnectionTest, EqualityAndUndirectedComparison) {
  Connection a = Conn({"d1", "e1"});
  Connection b = Conn({"d1", "e1"});
  EXPECT_EQ(a, b);
  Connection c = Conn({"e1", "d1"});
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(a.SamePathUndirected(c));
  Connection d = Conn({"d2", "e2"});
  EXPECT_FALSE(a.SamePathUndirected(d));
}

TEST_F(ConnectionTest, ToStringWithKeywords) {
  Connection conn = Conn({"d1", "e1"});
  std::map<TupleId, std::string> keyword_of{
      {PaperTuple(*dataset_.db, "d1"), "XML"},
      {PaperTuple(*dataset_.db, "e1"), "Smith"}};
  EXPECT_EQ(conn.ToString(*dataset_.db, keyword_of),
            "DEPARTMENT:d1(XML) - EMPLOYEE:e1(Smith)");
  EXPECT_EQ(conn.ToAnnotatedString(*dataset_.db, keyword_of),
            "DEPARTMENT:d1(XML) 1:N EMPLOYEE:e1(Smith)");
}

TEST_F(ConnectionTest, AnnotatedStringMatchesPaperTable3Row2) {
  Connection conn = Conn({"p1", "w_f1", "e1"});
  std::string s = conn.ToAnnotatedString(*dataset_.db);
  EXPECT_EQ(s, "PROJECT:p1 1:N WORKS_FOR:e1,p1 N:1 EMPLOYEE:e1");
}

}  // namespace
}  // namespace claks
