// Copyright 2026 The claks Authors.
//
// Regression suite for the indexed execution layer: the per-FK join
// indexes (relational/database.h) and the CSR data graph
// (graph/data_graph.h) must agree exactly with the seed per-table scan
// implementations, on the paper dataset and on a 10x company_gen
// instance, and the indexed candidate-network evaluator must return the
// seed evaluator's results verbatim.

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/mtjnt.h"
#include "datasets/company_gen.h"
#include "datasets/company_paper.h"
#include "graph/data_graph.h"
#include "relational/database.h"

namespace claks {
namespace {

// Scan-derived adjacency in the seed representation: one vector per node
// id, entries pushed in FK-edge order, referencing side first. Node and
// edge ids are slack-gapped per-table regions now, so the scan ordinal is
// mapped to the matching graph edge id through EdgeIds(), which enumerates
// live ids in the same table-major dense order as ScanAllFkEdges.
std::vector<std::vector<DataAdjacency>> ScanAdjacency(
    const Database& db, const DataGraph& graph) {
  std::vector<std::vector<DataAdjacency>> adjacency(graph.node_id_bound());
  std::vector<FkEdge> edges = db.ScanAllFkEdges();
  std::vector<uint32_t> ids = graph.EdgeIds();
  EXPECT_EQ(ids.size(), edges.size());
  for (uint32_t e = 0; e < edges.size() && e < ids.size(); ++e) {
    uint32_t from_node = graph.NodeOf(edges[e].from);
    uint32_t to_node = graph.NodeOf(edges[e].to);
    adjacency[from_node].push_back(DataAdjacency{ids[e], to_node, true});
    adjacency[to_node].push_back(DataAdjacency{ids[e], from_node, false});
  }
  return adjacency;
}

void ExpectAdjacencyMatchesScan(const Database& db, const DataGraph& graph) {
  auto expected = ScanAdjacency(db, graph);
  ASSERT_EQ(graph.node_id_bound(), expected.size());
  for (uint32_t node = 0; node < graph.node_id_bound(); ++node) {
    // Gap ids (unused slack slots) have no neighbors on either side.
    auto actual = graph.Neighbors(node);
    ASSERT_EQ(actual.size(), expected[node].size()) << "node " << node;
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].edge_index, expected[node][i].edge_index);
      EXPECT_EQ(actual[i].neighbor, expected[node][i].neighbor);
      EXPECT_EQ(actual[i].along_fk, expected[node][i].along_fk);
    }
  }
}

void ExpectJoinIndexMatchesScan(const Database& db) {
  for (uint32_t t = 0; t < db.num_tables(); ++t) {
    const Table& tab = db.table(t);
    const auto& fks = tab.schema().foreign_keys();
    for (uint32_t f = 0; f < fks.size(); ++f) {
      const Table* referenced = db.FindTable(fks[f].referenced_table);
      ASSERT_NE(referenced, nullptr);
      std::vector<size_t> local_indices;
      for (const auto& attr : fks[f].local_attributes) {
        auto idx = tab.schema().AttributeIndex(attr);
        ASSERT_TRUE(idx.has_value());
        local_indices.push_back(*idx);
      }

      // Child->parent agrees with the per-row FK resolution.
      for (uint32_t r = 0; r < tab.num_rows(); ++r) {
        auto parent = db.JoinParent(TupleId{t, r}, f);
        std::optional<TupleId> expected;
        for (const FkEdge& edge : db.ResolveFkEdgesFrom(TupleId{t, r})) {
          if (edge.fk_index == f) expected = edge.to;
        }
        EXPECT_EQ(parent, expected) << tab.name() << " row " << r;
      }

      // Parent->children agrees with the seed per-table scan
      // (Table::FindRows over the FK attributes).
      auto ref_index = db.TableIndex(fks[f].referenced_table);
      ASSERT_TRUE(ref_index.has_value());
      auto pk_indices = referenced->schema().PrimaryKeyIndices();
      for (uint32_t pr = 0; pr < referenced->num_rows(); ++pr) {
        Row key;
        for (size_t idx : pk_indices) {
          key.push_back(referenced->row(pr)[idx]);
        }
        std::vector<size_t> scanned = tab.FindRows(local_indices, key);
        auto indexed = db.JoinChildren(t, f, TupleId{*ref_index, pr});
        ASSERT_EQ(indexed.size(), scanned.size())
            << tab.name() << " fk " << f << " parent row " << pr;
        for (size_t i = 0; i < indexed.size(); ++i) {
          EXPECT_EQ(static_cast<size_t>(indexed[i]), scanned[i]);
        }
      }
    }
  }
}

std::vector<TupleTree> RunDiscover(const KeywordSearchEngine& engine,
                                   const std::string& query,
                                   CnEvalStrategy strategy, size_t tmax) {
  auto parsed = ParseKeywordQuery(query, engine.index().tokenizer());
  auto matches = MatchKeywords(engine.index(), parsed);
  return DiscoverMtjnt(engine.data_graph(), engine.schema_graph(), matches,
                       tmax, strategy);
}

class JoinIndexPaperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    auto engine = KeywordSearchEngine::Create(
        dataset_.db.get(), dataset_.er_schema, dataset_.mapping);
    ASSERT_TRUE(engine.ok());
    engine_ = std::move(engine).ValueOrDie();
  }

  CompanyPaperDataset dataset_;
  std::unique_ptr<KeywordSearchEngine> engine_;
};

TEST_F(JoinIndexPaperTest, CachedEdgesMatchScan) {
  const std::vector<FkEdge>& cached = dataset_.db->ResolveAllFkEdges();
  std::vector<FkEdge> scanned = dataset_.db->ScanAllFkEdges();
  ASSERT_EQ(cached.size(), scanned.size());
  for (size_t i = 0; i < cached.size(); ++i) {
    EXPECT_EQ(cached[i].from, scanned[i].from);
    EXPECT_EQ(cached[i].to, scanned[i].to);
    EXPECT_EQ(cached[i].fk_index, scanned[i].fk_index);
  }
}

TEST_F(JoinIndexPaperTest, CsrAdjacencyMatchesScanDerivedAdjacency) {
  ExpectAdjacencyMatchesScan(*dataset_.db, engine_->data_graph());
}

TEST_F(JoinIndexPaperTest, JoinIndexLookupsMatchTableScans) {
  ExpectJoinIndexMatchesScan(*dataset_.db);
}

TEST_F(JoinIndexPaperTest, OutEdgesMatchPerTupleResolution) {
  const DataGraph& graph = engine_->data_graph();
  for (uint32_t node = 0; node < graph.node_id_bound(); ++node) {
    if (!graph.IsNode(node)) continue;
    std::vector<FkEdge> expected =
        dataset_.db->ResolveFkEdgesFrom(graph.TupleOf(node));
    auto out = graph.OutEdges(node);
    ASSERT_EQ(out.size(), expected.size());
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i].from, expected[i].from);
      EXPECT_EQ(out[i].to, expected[i].to);
      EXPECT_EQ(out[i].fk_index, expected[i].fk_index);
      auto edge_index = graph.OutEdge(node, expected[i].fk_index);
      ASSERT_TRUE(edge_index.has_value());
      EXPECT_EQ(*edge_index, graph.FirstOutEdge(node) + i);
    }
  }
}

TEST_F(JoinIndexPaperTest, IndexedCnEvaluationMatchesScan) {
  for (const std::string& query :
       {std::string("Smith XML"), std::string("Smith XML Alice"),
        std::string("Smith"), std::string("XML Alice")}) {
    for (size_t tmax : {3u, 5u}) {
      auto indexed =
          RunDiscover(*engine_, query, CnEvalStrategy::kIndexed, tmax);
      auto scan = RunDiscover(*engine_, query, CnEvalStrategy::kScan, tmax);
      EXPECT_EQ(indexed, scan) << query << " tmax " << tmax;
    }
  }
}

// All search methods must return the seed implementation's result sets on
// the paper dataset: DISCOVER (indexed) == exact MTJNT enumeration, and
// the engine's kMtjnt/kDiscover hits carry identical trees.
TEST_F(JoinIndexPaperTest, SearchMethodsAgreeOnPaperDataset) {
  auto parsed = ParseKeywordQuery("Smith XML", engine_->index().tokenizer());
  auto matches = MatchKeywords(engine_->index(), parsed);
  auto exact = EnumerateMtjnt(engine_->data_graph(), matches, 5);
  auto discover = RunDiscover(*engine_, "Smith XML",
                              CnEvalStrategy::kIndexed, 5);
  EXPECT_EQ(exact, discover);

  SearchOptions mtjnt_options;
  mtjnt_options.method = SearchMethod::kMtjnt;
  mtjnt_options.tmax = 5;
  SearchOptions discover_options = mtjnt_options;
  discover_options.method = SearchMethod::kDiscover;
  auto mtjnt_result = engine_->Search("Smith XML", mtjnt_options);
  auto discover_result = engine_->Search("Smith XML", discover_options);
  ASSERT_TRUE(mtjnt_result.ok());
  ASSERT_TRUE(discover_result.ok());
  auto trees = [](const SearchResult& result) {
    std::set<TupleTree> out;
    for (const SearchHit& hit : result.hits) out.insert(hit.tree);
    return out;
  };
  EXPECT_EQ(trees(*mtjnt_result), trees(*discover_result));
}

TEST(JoinIndexGenTest, TenXCompanyGenSmoke) {
  auto generated = GenerateCompanyDataset(CompanyGenOptions::AtScale(10));
  ASSERT_TRUE(generated.ok());
  GeneratedDataset dataset = std::move(generated).ValueOrDie();
  Database& db = *dataset.db;

  // Cached edge list identical to the seed scan.
  std::vector<FkEdge> scanned = db.ScanAllFkEdges();
  const std::vector<FkEdge>& cached = db.ResolveAllFkEdges();
  ASSERT_EQ(cached.size(), scanned.size());
  for (size_t i = 0; i < cached.size(); ++i) {
    EXPECT_EQ(cached[i].from, scanned[i].from);
    EXPECT_EQ(cached[i].to, scanned[i].to);
    EXPECT_EQ(cached[i].fk_index, scanned[i].fk_index);
  }
  EXPECT_TRUE(db.JoinIndexesFresh());

  ExpectJoinIndexMatchesScan(db);

  auto engine = KeywordSearchEngine::Create(dataset.db.get(),
                                            dataset.er_schema,
                                            dataset.mapping);
  ASSERT_TRUE(engine.ok());
  ExpectAdjacencyMatchesScan(db, (*engine)->data_graph());

  auto indexed =
      RunDiscover(**engine, "smith xml", CnEvalStrategy::kIndexed, 4);
  auto scan = RunDiscover(**engine, "smith xml", CnEvalStrategy::kScan, 4);
  EXPECT_FALSE(indexed.empty());
  EXPECT_EQ(indexed, scan);
}

TEST(JoinIndexGenTest, InsertInvalidatesAndRebuilds) {
  auto generated = GenerateCompanyDataset(CompanyGenOptions::AtScale(1));
  ASSERT_TRUE(generated.ok());
  GeneratedDataset dataset = std::move(generated).ValueOrDie();
  Database& db = *dataset.db;

  size_t edges_before = db.ResolveAllFkEdges().size();
  ASSERT_TRUE(db.JoinIndexesFresh());

  // A new employee referencing d1 adds exactly one FK edge; the cache
  // must notice the insert and rebuild on next access.
  Table* employees = db.FindMutableTable("EMPLOYEE");
  ASSERT_NE(employees, nullptr);
  ASSERT_TRUE(employees
                  ->InsertValues({Value::String("e-extra"),
                                  Value::String("Smith"),
                                  Value::String("John"),
                                  Value::String("d1")})
                  .ok());
  EXPECT_FALSE(db.JoinIndexesFresh());
  EXPECT_EQ(db.ResolveAllFkEdges().size(), edges_before + 1);
  EXPECT_TRUE(db.JoinIndexesFresh());
}

}  // namespace
}  // namespace claks
