// Copyright 2026 The claks Authors.

#include "core/topk.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/enumerator.h"
#include "datasets/company_gen.h"
#include "datasets/company_paper.h"
#include "text/matcher.h"

namespace claks {
namespace {

class TopkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    graph_ = std::make_unique<DataGraph>(dataset_.db.get());
  }

  std::vector<uint32_t> Nodes(const std::vector<std::string>& names) {
    std::vector<uint32_t> out;
    for (const auto& name : names) {
      out.push_back(graph_->NodeOf(PaperTuple(*dataset_.db, name)));
    }
    return out;
  }

  CompanyPaperDataset dataset_;
  std::unique_ptr<DataGraph> graph_;
};

TEST_F(TopkTest, StreamsInLengthOrder) {
  ConnectionStream stream(graph_.get(), Nodes({"d1", "d2", "p1", "p2"}),
                          Nodes({"e1", "e2"}), 3);
  size_t previous = 0;
  size_t count = 0;
  while (auto connection = stream.Next()) {
    EXPECT_GE(connection->RdbLength(), previous);
    previous = connection->RdbLength();
    ++count;
  }
  EXPECT_EQ(count, 7u);  // the paper's rows 1-7 at depth <= 3
}

TEST_F(TopkTest, AgreesWithFullEnumeration) {
  auto xml = Nodes({"d1", "d2", "p1", "p2"});
  auto smith = Nodes({"e1", "e2"});
  ConnectionStream stream(graph_.get(), xml, smith, 3);
  std::vector<Connection> streamed;
  while (auto connection = stream.Next()) {
    streamed.push_back(std::move(*connection));
  }

  std::set<TupleId> from, to;
  for (uint32_t n : xml) from.insert(graph_->TupleOf(n));
  for (uint32_t n : smith) to.insert(graph_->TupleOf(n));
  EnumerateOptions options;
  options.max_rdb_edges = 3;
  auto enumerated = EnumerateConnections(*graph_, from, to, options);

  ASSERT_EQ(streamed.size(), enumerated.size());
  for (const Connection& conn : enumerated) {
    bool found = false;
    for (const Connection& other : streamed) {
      if (conn == other) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(TopkTest, EarlyStopDoesLessWork) {
  auto xml = Nodes({"d1", "d2", "p1", "p2"});
  auto smith = Nodes({"e1", "e2"});
  ConnectionStream full(graph_.get(), xml, smith, 4);
  while (full.Next()) {
  }
  ConnectionStream early(graph_.get(), xml, smith, 4);
  StreamTopK(&early, 2);
  EXPECT_LT(early.expansions(), full.expansions());
}

TEST_F(TopkTest, TopKStopsAtK) {
  ConnectionStream stream(graph_.get(), Nodes({"d1", "d2", "p1", "p2"}),
                          Nodes({"e1", "e2"}), 4);
  auto top2 = StreamTopK(&stream, 2);
  ASSERT_EQ(top2.size(), 2u);
  // Both are the length-1 connections d1-e1 and d2-e2.
  EXPECT_EQ(top2[0].RdbLength(), 1u);
  EXPECT_EQ(top2[1].RdbLength(), 1u);
}

TEST_F(TopkTest, KLargerThanResultSet) {
  ConnectionStream stream(graph_.get(), Nodes({"d1"}), Nodes({"e1"}), 4);
  auto all = StreamTopK(&stream, 100);
  EXPECT_EQ(all.size(), 2u);  // d1-e1 and d1-p1-w_f1-e1
}

TEST_F(TopkTest, SharedTupleIsZeroLengthAnswer) {
  ConnectionStream stream(graph_.get(), Nodes({"d1", "e1"}),
                          Nodes({"d1"}), 4);
  auto first = stream.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->RdbLength(), 0u);
}

TEST_F(TopkTest, NoAnswersWhenDisconnected) {
  ConnectionStream stream(graph_.get(), Nodes({"d3"}), Nodes({"e1"}), 6);
  EXPECT_FALSE(stream.Next().has_value());
}

TEST_F(TopkTest, DepthBoundRespected) {
  ConnectionStream stream(graph_.get(), Nodes({"d1"}), Nodes({"e1"}), 1);
  size_t count = 0;
  while (auto connection = stream.Next()) {
    EXPECT_LE(connection->RdbLength(), 1u);
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST_F(TopkTest, DeterministicAcrossRuns) {
  auto run = [&] {
    ConnectionStream stream(graph_.get(), Nodes({"d1", "d2", "p1", "p2"}),
                            Nodes({"e1", "e2"}), 3);
    std::vector<std::string> rendered;
    while (auto connection = stream.Next()) {
      rendered.push_back(connection->ToString(*dataset_.db));
    }
    return rendered;
  };
  EXPECT_EQ(run(), run());
}

TEST_F(TopkTest, ExpansionCountsPinned) {
  // Golden counts captured before the pop-and-move / incremental-visited
  // optimisation: the faster expansion must pop exactly the same frontier
  // sequence.
  auto xml = Nodes({"d1", "d2", "p1", "p2"});
  auto smith = Nodes({"e1", "e2"});
  {
    ConnectionStream stream(graph_.get(), xml, smith, 3);
    size_t count = 0;
    while (stream.Next()) ++count;
    EXPECT_EQ(count, 7u);
    EXPECT_EQ(stream.expansions(), 45u);
  }
  {
    ConnectionStream stream(graph_.get(), xml, smith, 4);
    size_t count = 0;
    while (stream.Next()) ++count;
    EXPECT_EQ(count, 9u);
    EXPECT_EQ(stream.expansions(), 56u);
  }
  {
    ConnectionStream stream(graph_.get(), xml, smith, 4);
    StreamTopK(&stream, 2);
    EXPECT_EQ(stream.expansions(), 10u);
  }
  {
    ConnectionStream stream(graph_.get(), smith, xml, 3);
    size_t count = 0;
    while (stream.Next()) ++count;
    EXPECT_EQ(count, 4u);
    EXPECT_EQ(stream.expansions(), 10u);
  }
}

TEST_F(TopkTest, BidirectionalFindsInteriorSourceConnections) {
  auto xml = Nodes({"d1", "d2", "p1", "p2"});
  auto smith = Nodes({"e1", "e2"});
  // One-directional smith -> xml stops at the first XML tuple and misses
  // connections whose interior holds an XML tuple (the paper's connection
  // 3, p1 - d1 - e1): only 4 of the 7 arrive.
  ConnectionStream one_way(graph_.get(), smith, xml, 3);
  size_t one_way_count = 0;
  while (one_way.Next()) ++one_way_count;
  EXPECT_EQ(one_way_count, 4u);

  // The bidirectional stream recovers all 7, still in nondecreasing
  // length order, regardless of which side is labelled first.
  for (bool flip : {false, true}) {
    ConnectionStream stream = ConnectionStream::Bidirectional(
        graph_.get(), flip ? smith : xml, flip ? xml : smith, 3);
    size_t previous = 0;
    size_t count = 0;
    while (auto connection = stream.Next()) {
      EXPECT_GE(connection->RdbLength(), previous);
      previous = connection->RdbLength();
      ++count;
    }
    EXPECT_EQ(count, 7u) << "flip=" << flip;
  }
}

TEST_F(TopkTest, BidirectionalDeduplicatesAcrossLanes) {
  auto xml = Nodes({"d1", "d2", "p1", "p2"});
  auto smith = Nodes({"e1", "e2"});
  ConnectionStream stream =
      ConnectionStream::Bidirectional(graph_.get(), xml, smith, 3);
  std::vector<Connection> streamed;
  while (auto connection = stream.Next()) {
    streamed.push_back(std::move(*connection));
  }
  // No two emitted connections are the same undirected path.
  for (size_t i = 0; i < streamed.size(); ++i) {
    for (size_t j = i + 1; j < streamed.size(); ++j) {
      EXPECT_FALSE(streamed[i].SamePathUndirected(streamed[j]));
    }
  }
}

TEST_F(TopkTest, BidirectionalSharedTupleEmittedOnce) {
  // d1 sits on both sides: both lanes discover the zero-length answer,
  // the dedup set emits it once.
  ConnectionStream stream = ConnectionStream::Bidirectional(
      graph_.get(), Nodes({"d1", "e1"}), Nodes({"d1"}), 3);
  size_t zero_length = 0;
  while (auto connection = stream.Next()) {
    if (connection->RdbLength() == 0) ++zero_length;
  }
  EXPECT_EQ(zero_length, 1u);
}

TEST_F(TopkTest, StopLengthPausesAndResumes) {
  auto xml = Nodes({"d1", "d2", "p1", "p2"});
  auto smith = Nodes({"e1", "e2"});
  ConnectionStream stream(graph_.get(), xml, smith, 3);
  // No connection is shorter than one edge: a stop bound of 1 yields
  // nothing but leaves the queue intact.
  EXPECT_FALSE(stream.Next(1).has_value());
  ASSERT_TRUE(stream.PendingLength().has_value());
  EXPECT_GE(*stream.PendingLength(), 1u);
  // Raising the bound resumes: exactly the two length-1 connections.
  size_t short_count = 0;
  while (stream.Next(2)) ++short_count;
  EXPECT_EQ(short_count, 2u);
  // Unbounded finishes the drain; the total matches the one-shot run.
  size_t rest = 0;
  while (stream.Next()) ++rest;
  EXPECT_EQ(short_count + rest, 7u);
}

TEST_F(TopkTest, PendingLengthIsMonotone) {
  ConnectionStream stream = ConnectionStream::Bidirectional(
      graph_.get(), Nodes({"d1", "d2", "p1", "p2"}), Nodes({"e1", "e2"}), 3);
  size_t previous = 0;
  while (stream.PendingLength().has_value()) {
    size_t pending = *stream.PendingLength();
    EXPECT_GE(pending, previous);
    previous = pending;
    if (!stream.Next().has_value()) break;
  }
}

TEST(TopkSyntheticTest, ScalesAndStaysOrdered) {
  CompanyGenOptions options;
  options.num_departments = 6;
  options.employees_per_department = 8;
  auto dataset = GenerateCompanyDataset(options);
  ASSERT_TRUE(dataset.ok());
  DataGraph graph(dataset->db.get());
  InvertedIndex index(dataset->db.get());
  auto matches = MatchKeywords(
      index, ParseKeywordQuery("research xml", index.tokenizer()));
  if (!AllKeywordsMatched(matches)) GTEST_SKIP();
  std::vector<uint32_t> sources, targets;
  for (const TupleMatch& m : matches[0].matches) {
    sources.push_back(graph.NodeOf(m.tuple));
  }
  for (const TupleMatch& m : matches[1].matches) {
    targets.push_back(graph.NodeOf(m.tuple));
  }
  ConnectionStream stream(&graph, sources, targets, 3);
  size_t previous = 0;
  size_t count = 0;
  while (auto connection = stream.Next()) {
    EXPECT_GE(connection->RdbLength(), previous);
    previous = connection->RdbLength();
    if (++count > 5000) break;  // safety bound
  }
  EXPECT_GT(count, 0u);
}

}  // namespace
}  // namespace claks
