// Copyright 2026 The claks Authors.
//
// QuerySpec strict validation (one distinct QuerySpecError per nonsensical
// SearchOptions combination) and the enum <-> string round-trips the CLI
// parses flags with.

#include "core/query_spec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/ranking.h"

namespace claks {
namespace {

const SearchMethod kAllMethods[] = {
    SearchMethod::kEnumerate, SearchMethod::kMtjnt, SearchMethod::kDiscover,
    SearchMethod::kBanks, SearchMethod::kStream};

const RankerKind kAllRankers[] = {
    RankerKind::kRdbLength,     RankerKind::kErLength,
    RankerKind::kCloseFirst,    RankerKind::kLoosePenalty,
    RankerKind::kInstanceClose, RankerKind::kCombined,
    RankerKind::kAmbiguity,     RankerKind::kMoreContext};

// ---------------------------------------------------------------------------
// String round-trips
// ---------------------------------------------------------------------------

TEST(SearchMethodStringsTest, RoundTripsEveryMethod) {
  for (SearchMethod method : kAllMethods) {
    std::string name = SearchMethodToString(method);
    auto parsed = SearchMethodFromString(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, method) << name;
  }
}

TEST(SearchMethodStringsTest, RejectsUnknownNames) {
  EXPECT_FALSE(SearchMethodFromString("").has_value());
  EXPECT_FALSE(SearchMethodFromString("streaming").has_value());
  EXPECT_FALSE(SearchMethodFromString("Enumerate").has_value());
  EXPECT_FALSE(SearchMethodFromString("?").has_value());
}

TEST(RankerKindStringsTest, RoundTripsEveryRanker) {
  for (RankerKind kind : kAllRankers) {
    std::string name = RankerKindToString(kind);
    auto parsed = RankerKindFromString(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, kind) << name;
  }
}

TEST(RankerKindStringsTest, RejectsUnknownNames) {
  EXPECT_FALSE(RankerKindFromString("").has_value());
  EXPECT_FALSE(RankerKindFromString("closefirst").has_value());
  EXPECT_FALSE(RankerKindFromString("rdb_length").has_value());
  EXPECT_FALSE(RankerKindFromString("?").has_value());
}

TEST(QuerySpecErrorStringsTest, EveryCodeHasADistinctName) {
  const QuerySpecError kAll[] = {
      QuerySpecError::kWitnessWithoutInstanceCheck,
      QuerySpecError::kBanksOptionsOnNonBanksMethod,
      QuerySpecError::kPerEndpointLimitWithBanks,
      QuerySpecError::kZeroMaxRdbEdges,
      QuerySpecError::kZeroTmax,
      QuerySpecError::kStreamWithoutTopK,
      QuerySpecError::kZeroShards};
  std::vector<std::string> names;
  for (QuerySpecError error : kAll) {
    std::string name = QuerySpecErrorToString(error);
    EXPECT_NE(name, "?");
    for (const std::string& seen : names) EXPECT_NE(name, seen);
    names.push_back(std::move(name));
  }
}

// ---------------------------------------------------------------------------
// Validation: one test per error code
// ---------------------------------------------------------------------------

TEST(QuerySpecValidateTest, DefaultOptionsAreValid) {
  EXPECT_TRUE(QuerySpec::Validate(SearchOptions{}).empty());
}

TEST(QuerySpecValidateTest, WitnessWithoutInstanceCheck) {
  SearchOptions options;
  options.instance_check = false;
  options.witness_edges = 3;
  EXPECT_EQ(QuerySpec::Validate(options),
            std::vector<QuerySpecError>{
                QuerySpecError::kWitnessWithoutInstanceCheck});

  // The witness budget with the check on is meaningful.
  options.instance_check = true;
  EXPECT_TRUE(QuerySpec::Validate(options).empty());
  // And the check off without a budget is a plain "skip the check".
  options.instance_check = false;
  options.witness_edges = 0;
  EXPECT_TRUE(QuerySpec::Validate(options).empty());
}

TEST(QuerySpecValidateTest, BanksOptionsOnNonBanksMethod) {
  for (SearchMethod method : kAllMethods) {
    SearchOptions options;
    options.method = method;
    if (method == SearchMethod::kStream) options.top_k = 10;
    options.banks.max_distance = 9;  // any non-default banks knob
    std::vector<QuerySpecError> errors = QuerySpec::Validate(options);
    if (method == SearchMethod::kBanks) {
      EXPECT_TRUE(errors.empty()) << SearchMethodToString(method);
    } else {
      EXPECT_EQ(errors,
                std::vector<QuerySpecError>{
                    QuerySpecError::kBanksOptionsOnNonBanksMethod})
          << SearchMethodToString(method);
    }
  }
  // Each of the three knobs triggers it on its own.
  SearchOptions options;
  options.banks.top_k = 3;
  EXPECT_FALSE(QuerySpec::Validate(options).empty());
  options = SearchOptions{};
  options.banks.weight_model = BanksWeightModel::kDegreePenalized;
  EXPECT_FALSE(QuerySpec::Validate(options).empty());
}

TEST(QuerySpecValidateTest, PerEndpointLimitWithBanks) {
  SearchOptions options;
  options.method = SearchMethod::kBanks;
  options.per_endpoint_limit = 1;
  EXPECT_EQ(QuerySpec::Validate(options),
            std::vector<QuerySpecError>{
                QuerySpecError::kPerEndpointLimitWithBanks});
  // The limit is sound for the enumeration-flavoured methods.
  options.method = SearchMethod::kEnumerate;
  EXPECT_TRUE(QuerySpec::Validate(options).empty());
}

TEST(QuerySpecValidateTest, ZeroMaxRdbEdges) {
  for (SearchMethod method :
       {SearchMethod::kEnumerate, SearchMethod::kStream}) {
    SearchOptions options;
    options.method = method;
    if (method == SearchMethod::kStream) options.top_k = 10;
    options.max_rdb_edges = 0;
    EXPECT_EQ(QuerySpec::Validate(options),
              std::vector<QuerySpecError>{QuerySpecError::kZeroMaxRdbEdges})
        << SearchMethodToString(method);
  }
  // The bound is unused by the network-based methods.
  SearchOptions options;
  options.method = SearchMethod::kMtjnt;
  options.max_rdb_edges = 0;
  EXPECT_TRUE(QuerySpec::Validate(options).empty());
}

TEST(QuerySpecValidateTest, ZeroTmax) {
  for (SearchMethod method :
       {SearchMethod::kMtjnt, SearchMethod::kDiscover}) {
    SearchOptions options;
    options.method = method;
    options.tmax = 0;
    EXPECT_EQ(QuerySpec::Validate(options),
              std::vector<QuerySpecError>{QuerySpecError::kZeroTmax})
        << SearchMethodToString(method);
  }
  SearchOptions options;
  options.tmax = 0;  // kEnumerate ignores tmax
  EXPECT_TRUE(QuerySpec::Validate(options).empty());
}

TEST(QuerySpecValidateTest, StreamWithoutTopK) {
  SearchOptions options;
  options.method = SearchMethod::kStream;
  options.top_k = 0;
  EXPECT_EQ(QuerySpec::Validate(options),
            std::vector<QuerySpecError>{QuerySpecError::kStreamWithoutTopK});
  options.top_k = 10;
  EXPECT_TRUE(QuerySpec::Validate(options).empty());
  // Unbounded consumption belongs to kEnumerate.
  options.method = SearchMethod::kEnumerate;
  options.top_k = 0;
  EXPECT_TRUE(QuerySpec::Validate(options).empty());
}

TEST(QuerySpecValidateTest, ZeroShards) {
  SearchOptions options;
  options.shards = 0;
  EXPECT_EQ(QuerySpec::Validate(options),
            std::vector<QuerySpecError>{QuerySpecError::kZeroShards});
  // 1 is the single-threaded path, any larger count fans out.
  options.shards = 1;
  EXPECT_TRUE(QuerySpec::Validate(options).empty());
  options.shards = 8;
  EXPECT_TRUE(QuerySpec::Validate(options).empty());
}

TEST(QuerySpecValidateTest, MultipleErrorsAccumulate) {
  SearchOptions options;
  options.method = SearchMethod::kStream;
  options.top_k = 0;
  options.max_rdb_edges = 0;
  options.instance_check = false;
  options.witness_edges = 1;
  options.banks.top_k = 99;
  EXPECT_EQ(QuerySpec::Validate(options),
            (std::vector<QuerySpecError>{
                QuerySpecError::kWitnessWithoutInstanceCheck,
                QuerySpecError::kBanksOptionsOnNonBanksMethod,
                QuerySpecError::kZeroMaxRdbEdges,
                QuerySpecError::kStreamWithoutTopK}));
}

// ---------------------------------------------------------------------------
// QuerySpec construction
// ---------------------------------------------------------------------------

TEST(QuerySpecTest, CreateAcceptsValidOptions) {
  SearchOptions options;
  options.method = SearchMethod::kStream;
  options.top_k = 5;
  auto spec = QuerySpec::Create(options);
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->validated());
  EXPECT_EQ(spec->options().method, SearchMethod::kStream);
  EXPECT_EQ(spec->options().top_k, 5u);
}

TEST(QuerySpecTest, CreateNamesEveryErrorCode) {
  SearchOptions options;
  options.method = SearchMethod::kBanks;
  options.per_endpoint_limit = 2;
  options.instance_check = false;
  options.witness_edges = 4;
  auto spec = QuerySpec::Create(options);
  ASSERT_FALSE(spec.ok());
  EXPECT_TRUE(spec.status().IsInvalidArgument());
  const std::string& message = spec.status().message();
  EXPECT_NE(message.find("witness-without-instance-check"),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("per-endpoint-limit-with-banks"),
            std::string::npos)
      << message;
}

TEST(QuerySpecTest, UnvalidatedSkipsTheCheck) {
  SearchOptions options;
  options.method = SearchMethod::kStream;
  options.top_k = 0;  // invalid under Create
  QuerySpec spec = QuerySpec::Unvalidated(options);
  EXPECT_FALSE(spec.validated());
  EXPECT_EQ(spec.options().method, SearchMethod::kStream);
}

}  // namespace
}  // namespace claks
