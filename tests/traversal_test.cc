// Copyright 2026 The claks Authors.

#include "graph/traversal.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "datasets/company_paper.h"

namespace claks {
namespace {

class TraversalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    graph_ = std::make_unique<DataGraph>(dataset_.db.get());
  }

  uint32_t N(const std::string& name) {
    return graph_->NodeOf(PaperTuple(*dataset_.db, name));
  }

  CompanyPaperDataset dataset_;
  std::unique_ptr<DataGraph> graph_;
};

TEST_F(TraversalTest, BfsDistancesFromD1) {
  auto dist = BfsDistances(*graph_, N("d1"));
  EXPECT_EQ(dist[N("d1")], 0u);
  EXPECT_EQ(dist[N("e1")], 1u);
  EXPECT_EQ(dist[N("p1")], 1u);
  EXPECT_EQ(dist[N("w_f1")], 2u);
  EXPECT_EQ(dist[N("t1")], 2u);  // d1 - e3 - t1
  EXPECT_EQ(dist[N("d3")], SIZE_MAX);  // isolated
}

TEST_F(TraversalTest, MultiSourceBfs) {
  auto dist = BfsDistances(*graph_, {N("d1"), N("d2")});
  EXPECT_EQ(dist[N("d1")], 0u);
  EXPECT_EQ(dist[N("d2")], 0u);
  EXPECT_EQ(dist[N("e2")], 1u);
  EXPECT_EQ(dist[N("e1")], 1u);
}

TEST_F(TraversalTest, ShortestPathReconstruction) {
  auto path = ShortestPath(*graph_, N("d1"), N("t1"));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->length(), 2u);
  auto nodes = path->Nodes();
  EXPECT_EQ(nodes.front(), N("d1"));
  EXPECT_EQ(nodes[1], N("e3"));
  EXPECT_EQ(nodes.back(), N("t1"));
  EXPECT_EQ(path->End(), N("t1"));
}

TEST_F(TraversalTest, ShortestPathToSelf) {
  auto path = ShortestPath(*graph_, N("d1"), N("d1"));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->length(), 0u);
}

TEST_F(TraversalTest, ShortestPathDisconnected) {
  EXPECT_FALSE(ShortestPath(*graph_, N("d1"), N("d3")).has_value());
}

TEST_F(TraversalTest, EnumerateSimplePathsD1ToE1) {
  // d1-e1 (1 edge); d1-p1-w_f1-e1 (3 edges). Within 4 edges nothing else
  // reaches e1 without repeating a node.
  auto paths = EnumerateSimplePaths(*graph_, N("d1"), N("e1"), 4);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].length(), 1u);
  EXPECT_EQ(paths[1].length(), 3u);
}

TEST_F(TraversalTest, EnumerateRespectsDepthBound) {
  auto paths = EnumerateSimplePaths(*graph_, N("d1"), N("e1"), 2);
  EXPECT_EQ(paths.size(), 1u);
}

TEST_F(TraversalTest, EnumerateBetweenSetsStopsAtFirstTarget) {
  // From p1 to {d1, d2}: the path p1-d1 stops at d1 and must not continue
  // through d1 to reach d2.
  auto paths = EnumerateSimplePathsBetweenSets(*graph_, {N("p1")},
                                               {N("d1"), N("d2")}, 4);
  for (const NodePath& path : paths) {
    auto nodes = path.Nodes();
    // No target may appear in the interior.
    for (size_t i = 0; i + 1 < nodes.size(); ++i) {
      EXPECT_NE(nodes[i], N("d2"));
      if (i > 0) {
        EXPECT_NE(nodes[i], N("d1"));
      }
    }
  }
}

TEST_F(TraversalTest, SourceInTargetSetYieldsZeroEdgePath) {
  auto paths =
      EnumerateSimplePathsBetweenSets(*graph_, {N("d1")}, {N("d1")}, 3);
  ASSERT_FALSE(paths.empty());
  EXPECT_EQ(paths[0].length(), 0u);
}

TEST_F(TraversalTest, MaxResultsCapsOutput) {
  auto paths = EnumerateSimplePathsBetweenSets(
      *graph_, {N("d1"), N("d2")}, {N("e1"), N("e2")}, 4,
      /*max_results=*/1);
  EXPECT_EQ(paths.size(), 1u);
}

TEST_F(TraversalTest, PathsAreSimple) {
  auto paths = EnumerateSimplePaths(*graph_, N("d2"), N("e2"), 4);
  for (const NodePath& path : paths) {
    auto nodes = path.Nodes();
    std::set<uint32_t> unique(nodes.begin(), nodes.end());
    EXPECT_EQ(unique.size(), nodes.size());
  }
}

TEST_F(TraversalTest, SortedByLength) {
  auto paths = EnumerateSimplePathsBetweenSets(
      *graph_, {N("d1"), N("d2")}, {N("e1"), N("e2")}, 4);
  for (size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i - 1].length(), paths[i].length());
  }
}

}  // namespace
}  // namespace claks
