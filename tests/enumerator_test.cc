// Copyright 2026 The claks Authors.

#include "core/enumerator.h"

#include <gtest/gtest.h>

#include <memory>

#include "datasets/company_paper.h"
#include "text/matcher.h"

namespace claks {
namespace {

class EnumeratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    graph_ = std::make_unique<DataGraph>(dataset_.db.get());
    index_ = std::make_unique<InvertedIndex>(dataset_.db.get());
  }

  std::set<TupleId> Tuples(const std::vector<std::string>& names) {
    std::set<TupleId> out;
    for (const auto& name : names) {
      out.insert(PaperTuple(*dataset_.db, name));
    }
    return out;
  }

  CompanyPaperDataset dataset_;
  std::unique_ptr<DataGraph> graph_;
  std::unique_ptr<InvertedIndex> index_;
};

TEST_F(EnumeratorTest, PaperQueryDepth3FindsConnections1To7) {
  // With max 3 FK edges, the "Smith XML" connections are exactly the
  // paper's rows 1-7 of Table 2 (in some direction).
  EnumerateOptions options;
  options.max_rdb_edges = 3;
  auto matches = MatchKeywords(
      *index_, ParseKeywordQuery("XML Smith", index_->tokenizer()));
  auto connections = EnumerateConnections(*graph_, matches, options);
  EXPECT_EQ(connections.size(), 7u);
}

TEST_F(EnumeratorTest, EndpointsCarryTheKeywords) {
  EnumerateOptions options;
  options.max_rdb_edges = 3;
  auto xml = Tuples({"d1", "d2", "p1", "p2"});
  auto smith = Tuples({"e1", "e2"});
  for (const Connection& conn :
       EnumerateConnections(*graph_, xml, smith, options)) {
    EXPECT_TRUE(xml.count(conn.front()) > 0);
    EXPECT_TRUE(smith.count(conn.back()) > 0);
    // Interior tuples never come from the target set.
    for (size_t i = 1; i + 1 < conn.tuples().size(); ++i) {
      EXPECT_EQ(smith.count(conn.tuples()[i]), 0u);
    }
  }
}

TEST_F(EnumeratorTest, DepthBoundsResultLengths) {
  auto xml = Tuples({"d1", "d2", "p1", "p2"});
  auto smith = Tuples({"e1", "e2"});
  EnumerateOptions tight;
  tight.max_rdb_edges = 1;
  auto short_conns = EnumerateConnections(*graph_, xml, smith, tight);
  // Only d1-e1 and d2-e2.
  EXPECT_EQ(short_conns.size(), 2u);
  for (const Connection& conn : short_conns) {
    EXPECT_LE(conn.RdbLength(), 1u);
  }
}

TEST_F(EnumeratorTest, SharedTupleYieldsZeroEdgeConnection) {
  auto a = Tuples({"d1", "e1"});
  auto b = Tuples({"d1"});
  auto connections = EnumerateConnections(*graph_, a, b, {});
  ASSERT_FALSE(connections.empty());
  EXPECT_EQ(connections[0].RdbLength(), 0u);
  EXPECT_EQ(connections[0].front(), PaperTuple(*dataset_.db, "d1"));
}

TEST_F(EnumeratorTest, MaxResultsCap) {
  auto xml = Tuples({"d1", "d2", "p1", "p2"});
  auto smith = Tuples({"e1", "e2"});
  EnumerateOptions options;
  options.max_rdb_edges = 4;
  options.max_results = 3;
  auto connections = EnumerateConnections(*graph_, xml, smith, options);
  EXPECT_EQ(connections.size(), 3u);
}

TEST_F(EnumeratorTest, RequiresExactlyTwoKeywordSets) {
  auto matches = MatchKeywords(
      *index_, ParseKeywordQuery("XML", index_->tokenizer()));
  EXPECT_DEATH(EnumerateConnections(*graph_, matches, {}), "matches");
}

TEST_F(EnumeratorTest, DeduplicateUndirected) {
  Connection forward({PaperTuple(*dataset_.db, "d1"),
                      PaperTuple(*dataset_.db, "e1")},
                     {ConnectionEdge{0, false}});
  Connection backward = forward.Reversed();
  auto unique = DeduplicateUndirected({forward, backward, forward});
  EXPECT_EQ(unique.size(), 1u);
}

TEST_F(EnumeratorTest, ResultsSortedByLength) {
  auto xml = Tuples({"d1", "d2", "p1", "p2"});
  auto smith = Tuples({"e1", "e2"});
  EnumerateOptions options;
  options.max_rdb_edges = 4;
  auto connections = EnumerateConnections(*graph_, xml, smith, options);
  for (size_t i = 1; i < connections.size(); ++i) {
    EXPECT_LE(connections[i - 1].RdbLength(), connections[i].RdbLength());
  }
}

}  // namespace
}  // namespace claks
