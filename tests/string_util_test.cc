// Copyright 2026 The claks Authors.

#include "common/string_util.h"

#include <gtest/gtest.h>

namespace claks {
namespace {

TEST(SplitTest, Basic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitWhitespaceTest, DropsRuns) {
  EXPECT_EQ(SplitWhitespace("  Smith\t XML \n"),
            (std::vector<std::string>{"Smith", "XML"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(TrimTest, Basic) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("  "), "");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("XML and IR"), "xml and ir");
  EXPECT_EQ(ToLower(""), "");
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("w_f1", "w_f"));
  EXPECT_FALSE(StartsWith("w", "w_f"));
  EXPECT_TRUE(EndsWith("EMPLOYEE.SSN", ".SSN"));
  EXPECT_FALSE(EndsWith("SSN", ".SSN"));
}

TEST(CaseInsensitiveTest, Equals) {
  EXPECT_TRUE(EqualsIgnoreCase("XML", "xml"));
  EXPECT_FALSE(EqualsIgnoreCase("XML", "xmll"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(CaseInsensitiveTest, Contains) {
  EXPECT_TRUE(ContainsIgnoreCase("teaching are XML.", "xml"));
  EXPECT_TRUE(ContainsIgnoreCase("abc", ""));
  EXPECT_FALSE(ContainsIgnoreCase("ab", "abc"));
  EXPECT_TRUE(ContainsIgnoreCase("Smith", "SMITH"));
}

TEST(StrFormatTest, Formats) {
  EXPECT_EQ(StrFormat("x=%d y=%s", 3, "z"), "x=3 y=z");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(PadTest, Pads) {
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadRight("abcd", 2), "abcd");
  EXPECT_EQ(PadLeft("7", 3), "  7");
}

}  // namespace
}  // namespace claks
