// Copyright 2026 The claks Authors.
//
// The service's versioned Prepare/Fetch cursor endpoints
// (service/query_api.h): strict typed validation, api versioning, page
// sequences equal to whole-result Submit, cache-key compatibility in both
// directions (cached whole results back cursors; drained cursors fill the
// cache), snapshot pinning across Mutate, shared server state between
// identical cursors, and lifecycle (Close, max_open_cursors, futures).

#include "service/query_api.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datasets/company_paper.h"
#include "service/search_service.h"

namespace claks {
namespace {

std::unique_ptr<SearchService> PaperService(ServiceOptions options) {
  auto dataset = BuildCompanyPaperDataset();
  CLAKS_CHECK(dataset.ok());
  auto service = SearchService::Create(
      std::move(dataset->db), std::move(dataset->er_schema),
      std::move(dataset->mapping), options);
  CLAKS_CHECK(service.ok());
  return std::move(service).ValueOrDie();
}

std::vector<std::string> Rendered(const std::vector<SearchHit>& hits) {
  std::vector<std::string> out;
  for (const SearchHit& hit : hits) out.push_back(hit.rendered);
  return out;
}

QueryRequest StreamRequest(const std::string& text, size_t top_k = 5) {
  QueryRequest request;
  request.query_text = text;
  request.options.method = SearchMethod::kStream;
  request.options.ranker = RankerKind::kRdbLength;
  request.options.max_rdb_edges = 3;
  request.options.top_k = top_k;
  return request;
}

TEST(ServiceCursorTest, RejectsUnsupportedApiVersion) {
  auto service = PaperService({});
  QueryRequest request = StreamRequest("smith xml");
  request.api_version = kQueryApiVersion + 1;
  auto response = service->Prepare(request);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsUnimplemented());
}

TEST(ServiceCursorTest, RejectsInvalidSpecWithTypedCodes) {
  auto service = PaperService({});
  QueryRequest request = StreamRequest("smith xml", /*top_k=*/0);
  auto response = service->Prepare(request);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsInvalidArgument());
  EXPECT_NE(response.status().message().find("stream-without-top-k"),
            std::string::npos)
      << response.status().message();
}

TEST(ServiceCursorTest, FetchPagesConcatenateToSearchNow) {
  ServiceOptions options;
  options.num_threads = 2;
  auto service = PaperService(options);

  QueryRequest request;
  request.query_text = "smith xml";
  request.options.max_rdb_edges = 3;  // kEnumerate, unbounded
  auto whole = service->SearchNow(request.query_text, request.options);
  ASSERT_TRUE(whole.ok());
  ASSERT_EQ(whole->hits.size(), 7u);

  auto prepared = service->Prepare(request);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->snapshot_version, 1u);
  EXPECT_EQ(prepared->query.keywords,
            (std::vector<std::string>{"smith", "xml"}));
  EXPECT_EQ(prepared->match_counts, (std::vector<size_t>{2u, 4u}));
  EXPECT_TRUE(prepared->hits.empty());
  EXPECT_FALSE(prepared->drained);

  std::vector<SearchHit> collected;
  bool drained = false;
  size_t fetches = 0;
  while (!drained) {
    auto page = service->Fetch(prepared->cursor_id, 3);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->offset, collected.size());
    for (const SearchHit& hit : page->hits) collected.push_back(hit);
    drained = page->drained;
    ++fetches;
    ASSERT_LE(fetches, 10u);  // runaway guard
  }
  EXPECT_EQ(fetches, 3u);  // 3 + 3 + 1
  EXPECT_EQ(Rendered(collected), Rendered(whole->hits));
  EXPECT_TRUE(service->Close(prepared->cursor_id).ok());
}

TEST(ServiceCursorTest, StreamCursorIsLazyAndFillsWholeResultCache) {
  ServiceOptions options;
  options.num_threads = 2;
  options.cache_capacity = 64;
  auto service = PaperService(options);

  QueryRequest request = StreamRequest("smith xml", /*top_k=*/5);
  auto prepared = service->Prepare(request);
  ASSERT_TRUE(prepared.ok());

  auto page1 = service->Fetch(prepared->cursor_id, 2);
  ASSERT_TRUE(page1.ok());
  EXPECT_EQ(page1->hits.size(), 2u);
  size_t page1_expansions = page1->expansions;
  EXPECT_GT(page1_expansions, 0u);

  auto page2 = service->Fetch(prepared->cursor_id, 10);
  ASSERT_TRUE(page2.ok());
  EXPECT_TRUE(page2->drained);
  // Laziness: page 1 stopped short of the drained cursor's total work.
  EXPECT_LT(page1_expansions, page2->expansions);

  // Cache compatibility, cursor -> whole-result: the drained sequence now
  // serves Submit as a cache hit with identical content.
  uint64_t hits_before = service->stats().cache_hits;
  auto now = service->SearchNow(request.query_text, request.options);
  ASSERT_TRUE(now.ok());
  EXPECT_EQ(service->stats().cache_hits, hits_before + 1);
  std::vector<SearchHit> paged;
  for (const SearchHit& hit : page1->hits) paged.push_back(hit);
  for (const SearchHit& hit : page2->hits) paged.push_back(hit);
  EXPECT_EQ(Rendered(paged), Rendered(now->hits));
  EXPECT_EQ(now->expansions, page2->expansions);
}

TEST(ServiceCursorTest, PrepareIsBackedByCachedWholeResult) {
  ServiceOptions options;
  options.cache_capacity = 64;
  auto service = PaperService(options);

  QueryRequest request = StreamRequest("smith xml", /*top_k=*/4);
  auto whole = service->SearchNow(request.query_text, request.options);
  ASSERT_TRUE(whole.ok());

  // Cache-backed state: Get counts one hit at Prepare.
  uint64_t hits_before = service->stats().cache_hits;
  auto prepared = service->Prepare(request);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(service->stats().cache_hits, hits_before + 1);
  EXPECT_EQ(prepared->expansions, whole->expansions);  // work already paid

  auto page = service->Fetch(prepared->cursor_id, 10);
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(page->drained);
  EXPECT_EQ(Rendered(page->hits), Rendered(whole->hits));
}

TEST(ServiceCursorTest, ConcurrentIdenticalCursorsShareServerState) {
  ServiceOptions options;
  options.cache_capacity = 64;
  auto service = PaperService(options);

  QueryRequest request = StreamRequest("smith xml", /*top_k=*/5);
  auto c1 = service->Prepare(request);
  ASSERT_TRUE(c1.ok());
  auto c2 = service->Prepare(request);
  ASSERT_TRUE(c2.ok());
  ASSERT_NE(c1->cursor_id, c2->cursor_id);

  // c1 pulls two pages; c2 starts from the top and sees the same
  // sequence, served from the shared materialized prefix (expansions do
  // not restart from zero for c2's page 1).
  auto c1p1 = service->Fetch(c1->cursor_id, 2);
  ASSERT_TRUE(c1p1.ok());
  auto c1p2 = service->Fetch(c1->cursor_id, 3);
  ASSERT_TRUE(c1p2.ok());
  EXPECT_TRUE(c1p2->drained);

  auto c2p1 = service->Fetch(c2->cursor_id, 2);
  ASSERT_TRUE(c2p1.ok());
  EXPECT_EQ(Rendered(c2p1->hits), Rendered(c1p1->hits));
  EXPECT_EQ(c2p1->expansions, c1p2->expansions);  // shared engine cursor
  EXPECT_EQ(c2p1->offset, 0u);

  EXPECT_EQ(service->stats().open_cursors, 2u);
  EXPECT_TRUE(service->Close(c1->cursor_id).ok());
  EXPECT_TRUE(service->Close(c2->cursor_id).ok());
  EXPECT_EQ(service->stats().open_cursors, 0u);
}

TEST(ServiceCursorTest, CursorPinsSnapshotAcrossMutate) {
  ServiceOptions options;
  options.cache_capacity = 16;
  auto service = PaperService(options);

  QueryRequest request;
  request.query_text = "zyzzyx";
  auto before = service->Prepare(request);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->snapshot_version, 1u);
  EXPECT_TRUE(before->drained);  // no match on generation 1

  Status mutated = service->Mutate([](Database* db) -> Status {
    Table* employees = db->FindMutableTable("EMPLOYEE");
    CLAKS_CHECK(employees != nullptr);
    return employees
        ->InsertValues({Value::String("e9"), Value::String("Zyzzyx"),
                        Value::String("Zed"), Value::String("d1")})
        .status();
  });
  ASSERT_TRUE(mutated.ok());

  // The old cursor stays frozen on generation 1...
  auto old_page = service->Fetch(before->cursor_id, 5);
  ASSERT_TRUE(old_page.ok());
  EXPECT_EQ(old_page->snapshot_version, 1u);
  EXPECT_TRUE(old_page->hits.empty());
  EXPECT_TRUE(old_page->drained);

  // ...while a fresh Prepare reads generation 2.
  auto after = service->Prepare(request);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->snapshot_version, 2u);
  auto new_page = service->Fetch(after->cursor_id, 5);
  ASSERT_TRUE(new_page.ok());
  EXPECT_EQ(new_page->hits.size(), 1u);
}

// A pathological page_size must saturate, not wrap the client offset
// backwards (which would re-serve already-fetched pages).
TEST(ServiceCursorTest, HugePageSizeSaturatesInsteadOfRewinding) {
  auto service = PaperService({});
  auto prepared = service->Prepare(StreamRequest("smith xml", /*top_k=*/5));
  ASSERT_TRUE(prepared.ok());
  auto p1 = service->Fetch(prepared->cursor_id, 3);
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(p1->hits.size(), 3u);
  auto p2 = service->Fetch(prepared->cursor_id, static_cast<size_t>(-1));
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p2->offset, 3u);  // forward, never rewound
  EXPECT_EQ(p2->hits.size(), 2u);
  EXPECT_TRUE(p2->drained);
}

TEST(ServiceCursorTest, CloseLifecycleAndNotFound) {
  auto service = PaperService({});
  auto prepared = service->Prepare(StreamRequest("smith xml"));
  ASSERT_TRUE(prepared.ok());
  EXPECT_TRUE(service->Close(prepared->cursor_id).ok());
  EXPECT_TRUE(service->Close(prepared->cursor_id).IsNotFound());
  EXPECT_TRUE(service->Fetch(prepared->cursor_id, 1).status().IsNotFound());
  EXPECT_TRUE(service->Fetch(999999, 1).status().IsNotFound());
}

TEST(ServiceCursorTest, MaxOpenCursorsIsEnforced) {
  ServiceOptions options;
  options.max_open_cursors = 2;
  auto service = PaperService(options);

  auto c1 = service->Prepare(StreamRequest("smith xml"));
  ASSERT_TRUE(c1.ok());
  auto c2 = service->Prepare(StreamRequest("alice xml"));
  ASSERT_TRUE(c2.ok());
  auto c3 = service->Prepare(StreamRequest("smith alice"));
  ASSERT_FALSE(c3.ok());
  EXPECT_TRUE(c3.status().IsOutOfRange());

  EXPECT_TRUE(service->Close(c1->cursor_id).ok());
  auto c4 = service->Prepare(StreamRequest("smith alice"));
  EXPECT_TRUE(c4.ok());
}

// Several client cursors over one shared server state, each drained from
// its own thread: every consumer sees the identical full sequence (the
// shared prefix is extended under the state mutex; TSan covers this test
// in CI).
TEST(ServiceCursorTest, ConcurrentFetchesOverSharedStateSeeOneSequence) {
  ServiceOptions options;
  options.num_threads = 4;
  options.cache_capacity = 64;
  auto service = PaperService(options);

  QueryRequest request = StreamRequest("smith xml", /*top_k=*/5);
  constexpr int kClients = 4;
  std::vector<uint64_t> ids;
  for (int i = 0; i < kClients; ++i) {
    auto prepared = service->Prepare(request);
    ASSERT_TRUE(prepared.ok());
    ids.push_back(prepared->cursor_id);
  }

  std::vector<std::vector<std::string>> sequences(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&service, &sequences, &ids, i] {
      bool drained = false;
      while (!drained) {
        auto page = service->Fetch(ids[i], 2);
        ASSERT_TRUE(page.ok());
        for (const SearchHit& hit : page->hits) {
          sequences[i].push_back(hit.rendered);
        }
        drained = page->drained;
      }
    });
  }
  for (std::thread& t : clients) t.join();

  auto reference = service->SearchNow(request.query_text, request.options);
  ASSERT_TRUE(reference.ok());
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(sequences[i], Rendered(reference->hits)) << "client " << i;
  }
}

TEST(ServiceCursorTest, SubmitFetchResolvesLikeFetch) {
  ServiceOptions options;
  options.num_threads = 2;
  auto service = PaperService(options);

  auto prepared = service->Prepare(StreamRequest("smith xml", 5));
  ASSERT_TRUE(prepared.ok());
  auto future = service->SubmitFetch(prepared->cursor_id, 2);
  auto page = future.get();
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->hits.size(), 2u);
  EXPECT_EQ(page->offset, 0u);

  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.cursors_prepared, 1u);
  EXPECT_EQ(stats.pages_fetched, 1u);
}

}  // namespace
}  // namespace claks
