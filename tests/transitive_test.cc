// Copyright 2026 The claks Authors.
//
// Tests for the paper's §2 classification — including an exact
// reproduction of Table 1.

#include "er/transitive.h"

#include <gtest/gtest.h>

#include "datasets/company_paper.h"

namespace claks {
namespace {

using C = Cardinality;

TEST(ClassifyTest, SingleStepIsImmediate) {
  EXPECT_EQ(ClassifyCardinalitySequence({C::kOneN}),
            AssociationKind::kImmediate);
  EXPECT_EQ(ClassifyCardinalitySequence({C::kNM}),
            AssociationKind::kImmediate);
}

TEST(ClassifyTest, FunctionalChains) {
  EXPECT_EQ(ClassifyCardinalitySequence({C::kOneN, C::kOneN}),
            AssociationKind::kTransitiveFunctional);
  EXPECT_EQ(ClassifyCardinalitySequence({C::kNOne, C::kNOne, C::kNOne}),
            AssociationKind::kTransitiveFunctional);
  EXPECT_EQ(ClassifyCardinalitySequence({C::kOneOne, C::kOneN}),
            AssociationKind::kTransitiveFunctional);
}

TEST(ClassifyTest, TransitiveNM) {
  EXPECT_EQ(ClassifyCardinalitySequence({C::kNOne, C::kOneN}),
            AssociationKind::kTransitiveNM);
  EXPECT_EQ(ClassifyCardinalitySequence({C::kNM, C::kNM}),
            AssociationKind::kTransitiveNM);
  EXPECT_EQ(ClassifyCardinalitySequence({C::kNM, C::kOneN}),
            AssociationKind::kTransitiveNM);
}

TEST(ClassifyTest, MixedLoose) {
  // Paper relationship 4: department 1:N project N:M employee.
  EXPECT_EQ(ClassifyCardinalitySequence({C::kOneN, C::kNM}),
            AssociationKind::kMixedLoose);
  // Paper relationship 6: department 1:N project N:M employee 1:N
  // dependent.
  EXPECT_EQ(ClassifyCardinalitySequence({C::kOneN, C::kNM, C::kOneN}),
            AssociationKind::kMixedLoose);
}

TEST(ClassifyTest, ClosenessPredicates) {
  EXPECT_TRUE(GuaranteesCloseAssociation(AssociationKind::kImmediate));
  EXPECT_TRUE(
      GuaranteesCloseAssociation(AssociationKind::kTransitiveFunctional));
  EXPECT_FALSE(GuaranteesCloseAssociation(AssociationKind::kTransitiveNM));
  EXPECT_FALSE(GuaranteesCloseAssociation(AssociationKind::kMixedLoose));
  EXPECT_TRUE(AdmitsLooseAssociation(AssociationKind::kTransitiveNM));
  EXPECT_FALSE(AdmitsLooseAssociation(AssociationKind::kImmediate));
}

TEST(ClassifyTest, KindNames) {
  EXPECT_STREQ(AssociationKindToString(AssociationKind::kImmediate),
               "Immediate");
  EXPECT_STREQ(AssociationKindToString(AssociationKind::kTransitiveNM),
               "TransitiveNM");
}

// --- Table 1 of the paper, row by row -------------------------------------

class Table1Test : public ::testing::Test {
 protected:
  void SetUp() override { er_ = CompanyPaperErSchema(); }

  // Finds the path whose entity sequence matches `entities` exactly.
  RelationshipAnalysis Analyze(const std::vector<std::string>& entities) {
    auto paths = er_.EnumeratePaths(entities.front(), entities.back(),
                                    entities.size() - 1);
    for (const ErPath& path : paths) {
      if (path.EntitySequence() == entities) return AnalyzePath(path);
    }
    ADD_FAILURE() << "path not found";
    return AnalyzePath(paths.front());
  }

  ERSchema er_;
};

TEST_F(Table1Test, Row1ImmediateDepartmentEmployee) {
  auto analysis = Analyze({"DEPARTMENT", "EMPLOYEE"});
  EXPECT_EQ(analysis.steps, (std::vector<C>{C::kOneN}));
  EXPECT_EQ(analysis.kind, AssociationKind::kImmediate);
  EXPECT_TRUE(GuaranteesCloseAssociation(analysis.kind));
}

TEST_F(Table1Test, Row2ImmediateProjectEmployee) {
  auto analysis = Analyze({"PROJECT", "EMPLOYEE"});
  EXPECT_EQ(analysis.steps, (std::vector<C>{C::kNM}));
  EXPECT_EQ(analysis.kind, AssociationKind::kImmediate);
  EXPECT_TRUE(GuaranteesCloseAssociation(analysis.kind));
}

TEST_F(Table1Test, Row3DepartmentEmployeeDependentFunctional) {
  auto analysis = Analyze({"DEPARTMENT", "EMPLOYEE", "DEPENDENT"});
  EXPECT_EQ(analysis.steps, (std::vector<C>{C::kOneN, C::kOneN}));
  EXPECT_EQ(analysis.kind, AssociationKind::kTransitiveFunctional);
  EXPECT_EQ(analysis.endpoint, C::kOneN);
  EXPECT_EQ(analysis.loose_points, 0u);
}

TEST_F(Table1Test, Row4DepartmentProjectEmployeeLoose) {
  auto analysis = Analyze({"DEPARTMENT", "PROJECT", "EMPLOYEE"});
  EXPECT_EQ(analysis.steps, (std::vector<C>{C::kOneN, C::kNM}));
  EXPECT_EQ(analysis.kind, AssociationKind::kMixedLoose);
  EXPECT_FALSE(GuaranteesCloseAssociation(analysis.kind));
}

TEST_F(Table1Test, Row5ProjectDepartmentEmployeeTransitiveNM) {
  auto analysis = Analyze({"PROJECT", "DEPARTMENT", "EMPLOYEE"});
  EXPECT_EQ(analysis.steps, (std::vector<C>{C::kNOne, C::kOneN}));
  EXPECT_EQ(analysis.kind, AssociationKind::kTransitiveNM);
  EXPECT_EQ(analysis.endpoint, C::kNM);
  EXPECT_EQ(analysis.loose_points, 1u);  // one hub
}

TEST_F(Table1Test, Row6FourEntityChainLoose) {
  auto analysis =
      Analyze({"DEPARTMENT", "PROJECT", "EMPLOYEE", "DEPENDENT"});
  EXPECT_EQ(analysis.steps,
            (std::vector<C>{C::kOneN, C::kNM, C::kOneN}));
  // "This is not transitive 1:N relationship because it contains a
  // transitive N:M relationship as a part of it."
  EXPECT_EQ(analysis.kind, AssociationKind::kMixedLoose);
  EXPECT_FALSE(GuaranteesCloseAssociation(analysis.kind));
}

TEST_F(Table1Test, ReverseReadingGivesInverseClassification) {
  // The paper notes connection 3 "can be represented from dependent to
  // department (dependent N:1 employee N:1 department) as well" and is
  // still functional.
  auto analysis = Analyze({"DEPENDENT", "EMPLOYEE", "DEPARTMENT"});
  EXPECT_EQ(analysis.steps, (std::vector<C>{C::kNOne, C::kNOne}));
  EXPECT_EQ(analysis.kind, AssociationKind::kTransitiveFunctional);
}

TEST_F(Table1Test, DescribeMentionsKindAndEntities) {
  auto analysis = Analyze({"DEPARTMENT", "EMPLOYEE", "DEPENDENT"});
  std::string s = analysis.Describe();
  EXPECT_NE(s.find("department"), std::string::npos);
  EXPECT_NE(s.find("TransitiveFunctional"), std::string::npos);
}

TEST(AnalyzePathsBetweenTest, FindsAllDeptEmployeePaths) {
  ERSchema er = CompanyPaperErSchema();
  auto analyses = AnalyzePathsBetween(er, "DEPARTMENT", "EMPLOYEE", 2);
  // Length-1: WORKS_FOR; length-2: via PROJECT (CONTROLS + WORKS_ON).
  ASSERT_EQ(analyses.size(), 2u);
  EXPECT_EQ(analyses[0].kind, AssociationKind::kImmediate);
  EXPECT_EQ(analyses[1].kind, AssociationKind::kMixedLoose);
}

}  // namespace
}  // namespace claks
