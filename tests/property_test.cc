// Copyright 2026 The claks Authors.
//
// Parameterized property tests over synthetic datasets: the structural
// invariants of the whole pipeline must hold on every generated instance,
// not just the paper's example.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/engine.h"
#include "datasets/bibliography.h"
#include "datasets/company_gen.h"
#include "datasets/movies.h"

namespace claks {
namespace {

struct PropertyCase {
  const char* name;
  uint64_t seed;
  size_t scale;  // small multiplier
};

class CompanyPropertyTest : public ::testing::TestWithParam<PropertyCase> {
 protected:
  void SetUp() override {
    CompanyGenOptions options;
    options.seed = GetParam().seed;
    options.num_departments = 2 + GetParam().scale;
    options.employees_per_department = 3 + GetParam().scale;
    options.projects_per_department = 2;
    auto dataset = GenerateCompanyDataset(options);
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    auto engine = KeywordSearchEngine::Create(
        dataset_.db.get(), dataset_.er_schema, dataset_.mapping);
    ASSERT_TRUE(engine.ok());
    engine_ = std::move(engine).ValueOrDie();
  }

  GeneratedDataset dataset_;
  std::unique_ptr<KeywordSearchEngine> engine_;
};

TEST_P(CompanyPropertyTest, IntegrityHolds) {
  EXPECT_TRUE(dataset_.db->CheckReferentialIntegrity().ok());
}

TEST_P(CompanyPropertyTest, DataGraphEdgesMatchFkCount) {
  const DataGraph& graph = engine_->data_graph();
  EXPECT_EQ(graph.num_edges(), dataset_.db->ResolveAllFkEdges().size());
  EXPECT_EQ(graph.num_nodes(), dataset_.db->TotalRows());
}

TEST_P(CompanyPropertyTest, ErLengthNeverExceedsRdbLength) {
  SearchOptions options;
  options.max_rdb_edges = 4;
  options.instance_check = false;
  auto result = engine_->Search("research xml", options);
  if (!result.ok()) GTEST_SKIP();  // keyword may not occur at tiny scales
  for (const SearchHit& hit : result->hits) {
    EXPECT_LE(hit.er_length, hit.rdb_length);
  }
}

TEST_P(CompanyPropertyTest, CloseHitsHaveNoLoosePoints) {
  SearchOptions options;
  options.max_rdb_edges = 4;
  options.instance_check = false;
  auto result = engine_->Search("research xml", options);
  if (!result.ok()) GTEST_SKIP();
  for (const SearchHit& hit : result->hits) {
    if (hit.schema_close) {
      EXPECT_EQ(hit.hub_patterns, 0u);
      // N:M steps are allowed only as a single immediate step.
      if (hit.nm_steps > 0) {
        EXPECT_EQ(hit.kind, AssociationKind::kImmediate);
      }
    } else {
      EXPECT_GT(hit.hub_patterns + hit.nm_steps, 0u);
    }
  }
}

TEST_P(CompanyPropertyTest, MtjntIsSubsetOfEnumeration) {
  // Every path-shaped MTJNT (tmax tuples) must appear among enumerated
  // connections with the equivalent edge budget.
  SearchOptions mtjnt_opts;
  mtjnt_opts.method = SearchMethod::kMtjnt;
  mtjnt_opts.tmax = 4;
  mtjnt_opts.instance_check = false;
  auto mtjnt = engine_->Search("research xml", mtjnt_opts);
  if (!mtjnt.ok()) GTEST_SKIP();

  SearchOptions enum_opts;
  enum_opts.max_rdb_edges = 3;  // tmax tuples => tmax-1 edges
  enum_opts.instance_check = false;
  auto full = engine_->Search("research xml", enum_opts);
  ASSERT_TRUE(full.ok());

  size_t checked = 0;
  for (const SearchHit& hit : mtjnt->hits) {
    if (!hit.connection.has_value()) continue;
    // Only 2-endpoint MTJNTs whose endpoints carry distinct keywords are
    // guaranteed to be enumerated (enumeration stops at first target).
    bool found = false;
    for (const SearchHit& other : full->hits) {
      if (other.connection.has_value() &&
          other.connection->SamePathUndirected(*hit.connection)) {
        found = true;
        break;
      }
    }
    if (found) ++checked;
  }
  // At least the short MTJNTs coincide; require non-trivial overlap when
  // hits exist at all.
  if (!mtjnt->hits.empty() && !full->hits.empty()) {
    EXPECT_GT(checked, 0u);
  }
}

TEST_P(CompanyPropertyTest, DiscoverAgreesWithDataLevelMtjnt) {
  SearchOptions a;
  a.method = SearchMethod::kMtjnt;
  a.tmax = 3;
  a.instance_check = false;
  SearchOptions b = a;
  b.method = SearchMethod::kDiscover;
  auto ra = engine_->Search("research xml", a);
  auto rb = engine_->Search("research xml", b);
  if (!ra.ok() || !rb.ok()) GTEST_SKIP();
  EXPECT_EQ(ra->hits.size(), rb->hits.size());
}

TEST_P(CompanyPropertyTest, RankingIsTotalAndDeterministic) {
  SearchOptions options;
  options.max_rdb_edges = 3;
  auto r1 = engine_->Search("research xml", options);
  auto r2 = engine_->Search("research xml", options);
  if (!r1.ok() || !r2.ok()) GTEST_SKIP();
  ASSERT_EQ(r1->hits.size(), r2->hits.size());
  for (size_t i = 0; i < r1->hits.size(); ++i) {
    EXPECT_EQ(r1->hits[i].rendered, r2->hits[i].rendered);
  }
}

TEST_P(CompanyPropertyTest, ReverseEngineeredEngineAgreesOnLengths) {
  // The engine built by reverse engineering must compute the same ER
  // lengths as the engine built with the generator's own mapping
  // (relationship names differ; lengths must not).
  auto reversed = KeywordSearchEngine::Create(dataset_.db.get());
  ASSERT_TRUE(reversed.ok());
  SearchOptions options;
  options.max_rdb_edges = 3;
  options.instance_check = false;
  auto a = engine_->Search("research xml", options);
  auto b = (*reversed)->Search("research xml", options);
  if (!a.ok() || !b.ok()) GTEST_SKIP();
  ASSERT_EQ(a->hits.size(), b->hits.size());
  std::multiset<size_t> lengths_a, lengths_b;
  for (const SearchHit& hit : a->hits) lengths_a.insert(hit.er_length);
  for (const SearchHit& hit : b->hits) lengths_b.insert(hit.er_length);
  EXPECT_EQ(lengths_a, lengths_b);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CompanyPropertyTest,
    ::testing::Values(PropertyCase{"s1", 1, 1}, PropertyCase{"s2", 2, 2},
                      PropertyCase{"s3", 3, 3}, PropertyCase{"s7", 7, 2},
                      PropertyCase{"s42", 42, 4}),
    // `param_info`, not `info`: INSTANTIATE_TEST_SUITE_P's expansion has
    // its own `info` parameter the lambda's would shadow under -Wshadow.
    [](const ::testing::TestParamInfo<PropertyCase>& param_info) {
      return param_info.param.name;
    });

// --- Bibliography: self-relationship stress ---------------------------------

class BibliographyPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BibliographyPropertyTest, EngineHandlesSelfNM) {
  BibliographyGenOptions options;
  options.seed = GetParam();
  options.num_papers = 25;
  options.num_authors = 12;
  auto dataset = GenerateBibliographyDataset(options);
  ASSERT_TRUE(dataset.ok());
  auto engine = KeywordSearchEngine::Create(
      dataset->db.get(), dataset->er_schema, dataset->mapping);
  ASSERT_TRUE(engine.ok());
  SearchOptions search;
  search.max_rdb_edges = 4;
  search.instance_check = false;
  auto result = (*engine)->Search("keyword search", search);
  ASSERT_TRUE(result.ok());
  for (const SearchHit& hit : result->hits) {
    EXPECT_LE(hit.er_length, hit.rdb_length);
  }
}

TEST_P(BibliographyPropertyTest, CitationPathsProjectThroughSelfNM) {
  BibliographyGenOptions options;
  options.seed = GetParam();
  auto dataset = GenerateBibliographyDataset(options);
  ASSERT_TRUE(dataset.ok());
  DataGraph graph(dataset->db.get());
  const Table* cites = dataset->db->FindTable("CITES");
  ASSERT_NE(cites, nullptr);
  if (cites->num_rows() == 0) GTEST_SKIP();
  // A path paper -> cites-row -> paper must project to one N:M step.
  uint32_t cites_table = *dataset->db->TableIndex("CITES");
  TupleId middle{cites_table, 0};
  auto edges = dataset->db->ResolveFkEdgesFrom(middle);
  ASSERT_EQ(edges.size(), 2u);
  Connection conn({edges[0].to, middle, edges[1].to},
                  {ConnectionEdge{0, false}, ConnectionEdge{1, true}});
  auto projection = ProjectToEr(conn, *dataset->db, dataset->er_schema,
                                dataset->mapping);
  ASSERT_TRUE(projection.ok()) << projection.status().ToString();
  EXPECT_EQ(projection->ErLength(), 1u);
  EXPECT_EQ(projection->steps[0].cardinality, Cardinality::kNM);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BibliographyPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8));

// --- Movies: wider schema ----------------------------------------------------

class MoviesPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MoviesPropertyTest, SearchAcrossWiderSchema) {
  MoviesGenOptions options;
  options.seed = GetParam();
  auto dataset = GenerateMoviesDataset(options);
  ASSERT_TRUE(dataset.ok());
  auto engine = KeywordSearchEngine::Create(
      dataset->db.get(), dataset->er_schema, dataset->mapping);
  ASSERT_TRUE(engine.ok());
  SearchOptions search;
  search.max_rdb_edges = 4;
  search.instance_check = false;
  auto result = (*engine)->Search("drama finland", search);
  ASSERT_TRUE(result.ok());
  for (const SearchHit& hit : result->hits) {
    EXPECT_LE(hit.er_length, hit.rdb_length);
    if (!hit.schema_close) {
      EXPECT_GT(hit.hub_patterns + hit.nm_steps, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MoviesPropertyTest,
                         ::testing::Values(11, 13, 17));

}  // namespace
}  // namespace claks
