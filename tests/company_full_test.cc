// Copyright 2026 The claks Authors.
//
// Tests over the full Elmasri-Navathe COMPANY schema: 1:1 MANAGES, self
// 1:N SUPERVISES and a second middle relation (DEPT_LOCATIONS).

#include "datasets/company_full.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/engine.h"
#include "er/transitive.h"

namespace claks {
namespace {

class CompanyFullTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = GenerateCompanyFullDataset({});
    ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
    dataset_ = std::move(dataset).ValueOrDie();
    auto engine = KeywordSearchEngine::Create(
        dataset_.db.get(), dataset_.er_schema, dataset_.mapping);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(engine).ValueOrDie();
  }

  GeneratedDataset dataset_;
  std::unique_ptr<KeywordSearchEngine> engine_;
};

TEST_F(CompanyFullTest, BuildsWithIntegrity) {
  EXPECT_TRUE(dataset_.db->CheckReferentialIntegrity().ok());
  EXPECT_EQ(dataset_.db->FindTable("DEPARTMENT")->num_rows(), 4u);
  EXPECT_EQ(dataset_.db->FindTable("EMPLOYEE")->num_rows(), 32u);
  EXPECT_GT(dataset_.db->FindTable("DEPT_LOCATIONS")->num_rows(), 0u);
}

TEST_F(CompanyFullTest, ManagesIsOneToOne) {
  const RelationshipType* manages =
      dataset_.er_schema.FindRelationship("MANAGES");
  ASSERT_NE(manages, nullptr);
  EXPECT_EQ(manages->cardinality, Cardinality::kOneOne);
  // Each department has exactly one manager and no employee manages two
  // departments (by construction: the first employee per department).
  const RelationshipStats& stats =
      engine_->statistics().StatsFor("MANAGES");
  EXPECT_EQ(stats.link_count, 4u);
  EXPECT_DOUBLE_EQ(stats.AvgFanoutLeftToRight(), 1.0);
  EXPECT_DOUBLE_EQ(stats.AvgFanoutRightToLeft(), 1.0);
}

TEST_F(CompanyFullTest, SupervisesSelfRelationship) {
  const RelationshipType* supervises =
      dataset_.er_schema.FindRelationship("SUPERVISES");
  ASSERT_NE(supervises, nullptr);
  EXPECT_EQ(supervises->left_entity, supervises->right_entity);
  // 7 supervised employees per department (all but the manager).
  const RelationshipStats& stats =
      engine_->statistics().StatsFor("SUPERVISES");
  EXPECT_EQ(stats.link_count, 28u);
  EXPECT_EQ(stats.left_participants, 4u);   // the four managers
  EXPECT_DOUBLE_EQ(stats.AvgFanoutLeftToRight(), 7.0);
}

TEST_F(CompanyFullTest, OneToOneStepsCountTowardEitherFunctionalSide) {
  // MANAGES (1:1) followed by WORKS_FOR read department->employee (1:N)
  // is functional via the all-Xi=1 side; with SUPERVISES (N:1 read
  // upward) it is functional via the all-Yi=1 side.
  using C = Cardinality;
  EXPECT_TRUE(IsFunctionalSequence({C::kOneOne, C::kOneN}));
  EXPECT_TRUE(IsFunctionalSequence({C::kNOne, C::kOneOne}));
  EXPECT_EQ(ClassifyCardinalitySequence({C::kOneOne, C::kOneN}),
            AssociationKind::kTransitiveFunctional);
}

TEST_F(CompanyFullTest, SupervisionChainProjectsAsFunctional) {
  // employee -> supervisor is N:1 at every step: a supervision chain is a
  // close (functional) connection.
  const DataGraph& graph = engine_->data_graph();
  const Database& db = *dataset_.db;
  uint32_t employee_table = *db.TableIndex("EMPLOYEE");
  // Find a supervised employee (SUPER_SSN not null): row 1 of EMPLOYEE is
  // e2, supervised by e1.
  TupleId subordinate{employee_table, 1};
  ASSERT_FALSE(db.RowOf(subordinate)[5].is_null());
  auto edges = db.ResolveFkEdgesFrom(subordinate);
  TupleId supervisor;
  bool found = false;
  for (const FkEdge& edge : edges) {
    if (edge.fk_index == 1) {
      supervisor = edge.to;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  (void)graph;
  Connection chain({subordinate, supervisor}, {ConnectionEdge{1, true}});
  auto projection = ProjectToEr(chain, db, dataset_.er_schema,
                                dataset_.mapping);
  ASSERT_TRUE(projection.ok()) << projection.status().ToString();
  ASSERT_EQ(projection->steps.size(), 1u);
  EXPECT_EQ(projection->steps[0].relationship, "SUPERVISES");
  EXPECT_EQ(projection->steps[0].cardinality, Cardinality::kNOne);
  EXPECT_FALSE(projection->steps[0].left_to_right);
}

TEST_F(CompanyFullTest, ManagerAndSupervisionQueriesWork) {
  // Two-keyword search across the extended schema runs end to end.
  SearchOptions options;
  options.max_rdb_edges = 4;
  options.instance_check = false;
  auto result = engine_->Search("research houston", options);
  if (!result.ok()) GTEST_SKIP();
  for (const SearchHit& hit : result->hits) {
    EXPECT_LE(hit.er_length, hit.rdb_length);
  }
}

TEST_F(CompanyFullTest, DeptLocationsIsMiddleRelation) {
  EXPECT_TRUE(dataset_.mapping.IsMiddleRelation("DEPT_LOCATIONS"));
  EXPECT_TRUE(dataset_.mapping.IsMiddleRelation("WORKS_ON"));
  EXPECT_FALSE(dataset_.mapping.IsMiddleRelation("EMPLOYEE"));
  // A department-location path collapses to one LOCATED_AT step.
  const Database& db = *dataset_.db;
  uint32_t dl_table = *db.TableIndex("DEPT_LOCATIONS");
  ASSERT_GT(db.table(dl_table).num_rows(), 0u);
  TupleId middle{dl_table, 0};
  auto edges = db.ResolveFkEdgesFrom(middle);
  ASSERT_EQ(edges.size(), 2u);
  Connection conn({edges[0].to, middle, edges[1].to},
                  {ConnectionEdge{0, false}, ConnectionEdge{1, true}});
  auto projection = ProjectToEr(conn, db, dataset_.er_schema,
                                dataset_.mapping);
  ASSERT_TRUE(projection.ok());
  EXPECT_EQ(projection->ErLength(), 1u);
  EXPECT_EQ(projection->steps[0].relationship, "LOCATED_AT");
}

TEST_F(CompanyFullTest, ManagesParticipationPartial) {
  // Only 4 of 32 employees manage a department.
  const RelationshipStats& stats =
      engine_->statistics().StatsFor("MANAGES");
  EXPECT_EQ(stats.left_participants, 4u);
  EXPECT_EQ(stats.left_total, 32u);
  EXPECT_NEAR(stats.LeftParticipation(), 4.0 / 32.0, 1e-9);
}

TEST_F(CompanyFullTest, DeterministicGeneration) {
  auto again = GenerateCompanyFullDataset({});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again).db->TotalRows(), dataset_.db->TotalRows());
  for (size_t t = 0; t < dataset_.db->num_tables(); ++t) {
    const Table& a = dataset_.db->table(t);
    const Table& b = (*again).db->table(t);
    ASSERT_EQ(a.num_rows(), b.num_rows());
    for (size_t r = 0; r < a.num_rows(); ++r) {
      EXPECT_EQ(a.row(r), b.row(r));
    }
  }
}

TEST_F(CompanyFullTest, ReverseEngineeringIsCoarserOnOneToOne) {
  // Without uniqueness metadata, the recovered schema sees MANAGES as 1:N
  // (the declared schema knows it is 1:1) — a documented limitation.
  auto recovered = ReverseEngineerEr(*dataset_.db);
  ASSERT_TRUE(recovered.ok());
  const RelationshipType* manages =
      recovered->schema.FindRelationship("MANAGES");
  ASSERT_NE(manages, nullptr);
  EXPECT_EQ(manages->cardinality, Cardinality::kOneN);
}

}  // namespace
}  // namespace claks
