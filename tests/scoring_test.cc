// Copyright 2026 The claks Authors.

#include "text/scoring.h"

#include <gtest/gtest.h>

#include <memory>

#include "datasets/company_paper.h"

namespace claks {
namespace {

class ScoringTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    index_ = std::make_unique<InvertedIndex>(dataset_.db.get());
  }

  std::vector<KeywordMatches> Match(const std::string& text) {
    return MatchKeywords(
        *index_, ParseKeywordQuery(text, index_->tokenizer()));
  }

  CompanyPaperDataset dataset_;
  std::unique_ptr<InvertedIndex> index_;
};

TEST_F(ScoringTest, IdfDecreasesWithDocumentFrequency) {
  // "smith" (df 2) is rarer than "teaching" (df 3) and scores higher.
  EXPECT_GT(InverseDocumentFrequency(*index_, "smith"),
            InverseDocumentFrequency(*index_, "teaching"));
}

TEST_F(ScoringTest, IdfOfAbsentTermIsHighest) {
  EXPECT_GT(InverseDocumentFrequency(*index_, "quantum"),
            InverseDocumentFrequency(*index_, "xml"));
}

TEST_F(ScoringTest, IdfNonNegative) {
  for (const char* term : {"xml", "smith", "teaching", "the", "quantum"}) {
    EXPECT_GE(InverseDocumentFrequency(*index_, term), 0.0) << term;
  }
}

TEST_F(ScoringTest, TupleMatchScorePositive) {
  auto matches = Match("smith");
  ASSERT_EQ(matches.size(), 1u);
  ASSERT_FALSE(matches[0].empty());
  double score =
      ScoreTupleMatch(*index_, "smith", matches[0].matches[0]);
  EXPECT_GT(score, 0.0);
}

TEST_F(ScoringTest, HigherTermFrequencyScoresHigher) {
  // p2 contains "xml" twice (name + description); d1 once.
  auto matches = Match("xml");
  const TupleMatch* p2 = nullptr;
  const TupleMatch* d1 = nullptr;
  for (const TupleMatch& m : matches[0].matches) {
    if (m.tuple == PaperTuple(*dataset_.db, "p2")) p2 = &m;
    if (m.tuple == PaperTuple(*dataset_.db, "d1")) d1 = &m;
  }
  ASSERT_NE(p2, nullptr);
  ASSERT_NE(d1, nullptr);
  EXPECT_GT(ScoreTupleMatch(*index_, "xml", *p2),
            ScoreTupleMatch(*index_, "xml", *d1));
}

TEST_F(ScoringTest, SaturationBoundsScore) {
  // With k1 saturation, doubling tf must less-than-double the score.
  ScoringOptions options;
  TupleMatch one;
  one.attribute_hits[0] = 1;
  TupleMatch two;
  two.attribute_hits[0] = 2;
  double s1 = ScoreTupleMatch(*index_, "xml", one, options);
  double s2 = ScoreTupleMatch(*index_, "xml", two, options);
  EXPECT_GT(s2, s1);
  EXPECT_LT(s2, 2.0 * s1);
}

TEST_F(ScoringTest, ScoreMatchesSumsBestPerKeyword) {
  auto both = Match("smith xml");
  double combined = ScoreMatches(*index_, both);
  auto smith_only = Match("smith");
  auto xml_only = Match("xml");
  EXPECT_NEAR(combined,
              ScoreMatches(*index_, smith_only) +
                  ScoreMatches(*index_, xml_only),
              1e-9);
}

TEST_F(ScoringTest, NoMatchesZeroScore) {
  auto none = Match("quantum");
  EXPECT_EQ(ScoreMatches(*index_, none), 0.0);
}

}  // namespace
}  // namespace claks
