// Copyright 2026 The claks Authors.
//
// ResultCursor equivalence and laziness. The contract under test: for
// every search method and every ranker, draining a cursor page by page —
// any page-size schedule — yields exactly the hit sequence of a single
// Search() call with the same options (Search itself being a thin wrapper
// over prepare + drain); and the two-keyword kStream cursor is genuinely
// lazy — fetching page 1 of a top-10 query at 100x scale performs strictly
// fewer stream expansions than draining the result space.

#include "core/cursor.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/query_spec.h"
#include "datasets/company_gen.h"
#include "datasets/company_paper.h"

namespace claks {
namespace {

const SearchMethod kAllMethods[] = {
    SearchMethod::kEnumerate, SearchMethod::kMtjnt, SearchMethod::kDiscover,
    SearchMethod::kBanks, SearchMethod::kStream};

const RankerKind kAllRankers[] = {
    RankerKind::kRdbLength,     RankerKind::kErLength,
    RankerKind::kCloseFirst,    RankerKind::kLoosePenalty,
    RankerKind::kInstanceClose, RankerKind::kCombined,
    RankerKind::kAmbiguity,     RankerKind::kMoreContext};

const RankerKind kMonotoneRankers[] = {
    RankerKind::kRdbLength,  RankerKind::kErLength,
    RankerKind::kCloseFirst, RankerKind::kLoosePenalty,
    RankerKind::kInstanceClose, RankerKind::kAmbiguity};

// Every rank-relevant field of one hit, byte-rendered.
std::string HitFingerprint(const SearchHit& hit) {
  std::string out = hit.rendered + "|";
  for (uint32_t node : hit.tree.nodes) out += std::to_string(node) + ".";
  out += "|";
  for (uint32_t e : hit.tree.edge_indices) out += std::to_string(e) + ".";
  out += "|" + std::to_string(hit.rdb_length) + "," +
         std::to_string(hit.er_length) + "," +
         std::to_string(static_cast<int>(hit.kind)) + "," +
         std::to_string(hit.hub_patterns) + "," +
         std::to_string(hit.nm_steps) + "," +
         (hit.schema_close ? "c" : "l") + "," +
         (hit.instance_close.has_value()
              ? (*hit.instance_close ? "i1" : "i0")
              : "i-") +
         "," + std::to_string(hit.text_score) + "," +
         std::to_string(hit.ambiguity) + "," +
         (hit.connection.has_value() ? "p" : "t");
  return out;
}

std::vector<std::string> Fingerprints(const std::vector<SearchHit>& hits) {
  std::vector<std::string> out;
  out.reserve(hits.size());
  for (const SearchHit& hit : hits) out.push_back(HitFingerprint(hit));
  return out;
}

// Drains `prepared` through a fresh cursor with pages of `page_size`,
// checking Drained/Stats bookkeeping along the way.
std::vector<SearchHit> DrainPages(const PreparedQuery& prepared,
                                  size_t page_size) {
  auto cursor = prepared.Open();
  EXPECT_TRUE(cursor.ok());
  std::vector<SearchHit> hits;
  while (!(*cursor)->Drained()) {
    auto page = (*cursor)->Next(page_size);
    EXPECT_TRUE(page.ok());
    if (page->empty()) break;
    for (SearchHit& hit : *page) hits.push_back(std::move(hit));
  }
  EXPECT_EQ((*cursor)->Stats().returned, hits.size());
  EXPECT_TRUE((*cursor)->Stats().drained);
  return hits;
}

class CursorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    auto engine = KeywordSearchEngine::Create(
        dataset_.db.get(), dataset_.er_schema, dataset_.mapping);
    ASSERT_TRUE(engine.ok());
    engine_ = std::move(engine).ValueOrDie();
  }

  CompanyPaperDataset dataset_;
  std::unique_ptr<KeywordSearchEngine> engine_;
};

// The satellite matrix: every method x every ranker x page sizes 1, 3, 7
// on the paper dataset — cursor drains equal the Search hit sequence.
TEST_F(CursorTest, PageDrainMatchesSearchEveryMethodEveryRanker) {
  for (SearchMethod method : kAllMethods) {
    for (RankerKind ranker : kAllRankers) {
      SearchOptions options;
      options.method = method;
      options.ranker = ranker;
      options.max_rdb_edges = 3;
      // top_k = 0 exercises the unbounded legacy shape (Unvalidated spec:
      // strict validation rejects it for kStream by design).
      auto reference = engine_->Search("Smith XML", options);
      ASSERT_TRUE(reference.ok());
      std::vector<std::string> expected = Fingerprints(reference->hits);
      ASSERT_FALSE(expected.empty())
          << SearchMethodToString(method) << "/"
          << RankerKindToString(ranker);

      for (size_t page_size : {1u, 3u, 7u}) {
        auto prepared =
            engine_->Prepare("Smith XML", QuerySpec::Unvalidated(options));
        ASSERT_TRUE(prepared.ok());
        std::vector<SearchHit> drained = DrainPages(*prepared, page_size);
        EXPECT_EQ(Fingerprints(drained), expected)
            << SearchMethodToString(method) << "/"
            << RankerKindToString(ranker) << " page=" << page_size;
      }
    }
  }
}

// Search() is a thin wrapper over prepare + drain: assembling a
// SearchResult by hand from the prepared metadata and a cursor drain
// reproduces it byte for byte — including the expansions work metric.
TEST_F(CursorTest, SearchEqualsPrepareDrainByteForByte) {
  for (SearchMethod method : kAllMethods) {
    for (RankerKind ranker : kAllRankers) {
      SearchOptions options;
      options.method = method;
      options.ranker = ranker;
      options.max_rdb_edges = 3;
      options.top_k = 4;

      auto via_search = engine_->Search("Smith XML", options);
      ASSERT_TRUE(via_search.ok());

      auto prepared =
          engine_->Prepare("Smith XML", QuerySpec::Unvalidated(options));
      ASSERT_TRUE(prepared.ok());
      auto cursor = prepared->Open();
      ASSERT_TRUE(cursor.ok());
      SearchResult assembled;
      assembled.query = prepared->query();
      assembled.matches = prepared->matches();
      assembled.keyword_of = prepared->keyword_of();
      while (!(*cursor)->Drained()) {
        auto page = (*cursor)->Next(2);
        ASSERT_TRUE(page.ok());
        if (page->empty()) break;
        for (SearchHit& hit : *page) assembled.hits.push_back(std::move(hit));
      }
      assembled.expansions = (*cursor)->Stats().expansions;

      const std::string label = std::string(SearchMethodToString(method)) +
                                "/" + RankerKindToString(ranker);
      EXPECT_EQ(assembled.ToString(*dataset_.db, 99),
                via_search->ToString(*dataset_.db, 99))
          << label;
      EXPECT_EQ(Fingerprints(assembled.hits), Fingerprints(via_search->hits))
          << label;
      EXPECT_EQ(assembled.expansions, via_search->expansions) << label;
      EXPECT_EQ(assembled.keyword_of, via_search->keyword_of) << label;
    }
  }
}

// Strictly-prepared streaming cursors (top_k > 0) drained page-wise match
// the one-shot Search — same hits and the same total expansion work.
TEST_F(CursorTest, StreamPagedTopKMatchesOneShot) {
  for (RankerKind ranker : kMonotoneRankers) {
    for (size_t k : {1u, 2u, 4u, 7u}) {
      SearchOptions options;
      options.method = SearchMethod::kStream;
      options.ranker = ranker;
      options.max_rdb_edges = 3;
      options.top_k = k;
      auto one_shot = engine_->Search("Smith XML", options);
      ASSERT_TRUE(one_shot.ok());

      for (size_t page_size : {1u, 3u}) {
        auto prepared = engine_->Prepare("Smith XML", options);  // strict
        ASSERT_TRUE(prepared.ok());
        EXPECT_TRUE(prepared->spec().validated());
        auto cursor = prepared->Open();
        ASSERT_TRUE(cursor.ok());
        std::vector<SearchHit> hits;
        while (!(*cursor)->Drained()) {
          auto page = (*cursor)->Next(page_size);
          ASSERT_TRUE(page.ok());
          if (page->empty()) break;
          for (SearchHit& hit : *page) hits.push_back(std::move(hit));
        }
        EXPECT_EQ(Fingerprints(hits), Fingerprints(one_shot->hits))
            << RankerKindToString(ranker) << " k=" << k
            << " page=" << page_size;
        // Fully consumed, the paged pull has done exactly the one-shot
        // settle work (intermediate pages stopped earlier).
        EXPECT_EQ((*cursor)->Stats().expansions, one_shot->expansions)
            << RankerKindToString(ranker) << " k=" << k
            << " page=" << page_size;
      }
    }
  }
}

// Page-wise settling: the first page of a top-k streaming cursor settles
// only its own ranks, so its expansion count is below the one-shot top-k
// settle, which is below the full drain.
TEST_F(CursorTest, StreamFirstPageDoesLessWorkThanFullTopK) {
  SearchOptions options;
  options.method = SearchMethod::kStream;
  options.ranker = RankerKind::kRdbLength;
  options.max_rdb_edges = 3;
  options.top_k = 5;

  auto one_shot = engine_->Search("Smith XML", options);
  ASSERT_TRUE(one_shot.ok());

  SearchOptions drain_options = options;
  drain_options.top_k = 0;
  auto full = engine_->Search("Smith XML", drain_options);
  ASSERT_TRUE(full.ok());

  auto prepared = engine_->Prepare("Smith XML", options);
  ASSERT_TRUE(prepared.ok());
  auto cursor = prepared->Open();
  ASSERT_TRUE(cursor.ok());
  auto page1 = (*cursor)->Next(2);
  ASSERT_TRUE(page1.ok());
  EXPECT_EQ(page1->size(), 2u);
  size_t page1_expansions = (*cursor)->Stats().expansions;
  EXPECT_LT(page1_expansions, one_shot->expansions);
  EXPECT_LT(page1_expansions, full->expansions);
}

// Streaming cursors honour per_endpoint_limit incrementally: pages match
// the grouped Search sequence.
TEST_F(CursorTest, StreamPagedHonoursPerEndpointLimit) {
  SearchOptions options;
  options.method = SearchMethod::kStream;
  options.ranker = RankerKind::kRdbLength;
  options.max_rdb_edges = 3;
  options.per_endpoint_limit = 1;
  options.top_k = 3;
  auto reference = engine_->Search("Smith XML", options);
  ASSERT_TRUE(reference.ok());

  auto prepared = engine_->Prepare("Smith XML", options);
  ASSERT_TRUE(prepared.ok());
  std::vector<SearchHit> drained = DrainPages(*prepared, 1);
  EXPECT_EQ(Fingerprints(drained), Fingerprints(reference->hits));
}

// AND-semantics miss: the prepared query is born empty, its cursor born
// drained.
TEST_F(CursorTest, EmptyResultCursorIsBornDrained) {
  SearchOptions options;
  auto prepared =
      engine_->Prepare("Smith quantum", QuerySpec::Unvalidated(options));
  ASSERT_TRUE(prepared.ok());
  EXPECT_TRUE(prepared->empty_result());
  auto cursor = prepared->Open();
  ASSERT_TRUE(cursor.ok());
  EXPECT_TRUE((*cursor)->Drained());
  auto page = (*cursor)->Next(5);
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(page->empty());
  EXPECT_EQ((*cursor)->Stats().returned, 0u);
}

// Strict Prepare rejects what QuerySpec::Validate rejects; the legacy
// Search facade still accepts the same bag.
TEST_F(CursorTest, StrictPrepareRejectsInvalidSpecLegacySearchAccepts) {
  SearchOptions options;
  options.method = SearchMethod::kStream;
  options.top_k = 0;
  options.max_rdb_edges = 3;
  auto prepared = engine_->Prepare("Smith XML", options);
  ASSERT_FALSE(prepared.ok());
  EXPECT_TRUE(prepared.status().IsInvalidArgument());
  EXPECT_NE(prepared.status().message().find("stream-without-top-k"),
            std::string::npos);
  auto legacy = engine_->Search("Smith XML", options);
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy->hits.size(), 7u);
}

// Keyword-count structural errors still surface at Prepare time (they
// depend on the query, not the spec).
TEST_F(CursorTest, PrepareRejectsTooManyKeywordsForPathMethods) {
  SearchOptions options;
  options.method = SearchMethod::kStream;
  options.top_k = 5;
  auto prepared = engine_->Prepare("Smith XML Alice", options);
  ASSERT_FALSE(prepared.ok());
  EXPECT_TRUE(prepared.status().IsInvalidArgument());
}

// The work metric is populated uniformly: stream expansions for kStream,
// visited nodes for kBanks, 0 for the exhaustive methods.
TEST_F(CursorTest, WorkMetricPerMethod) {
  SearchOptions options;
  options.max_rdb_edges = 3;

  options.method = SearchMethod::kBanks;
  auto banks = engine_->Search("Smith XML", options);
  ASSERT_TRUE(banks.ok());
  EXPECT_GT(banks->expansions, 0u);

  options.method = SearchMethod::kStream;
  auto stream = engine_->Search("Smith XML", options);
  ASSERT_TRUE(stream.ok());
  EXPECT_GT(stream->expansions, 0u);

  for (SearchMethod method : {SearchMethod::kEnumerate, SearchMethod::kMtjnt,
                              SearchMethod::kDiscover}) {
    options.method = method;
    auto result = engine_->Search("Smith XML", options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->expansions, 0u) << SearchMethodToString(method);
  }
}

// The same matrix at 10x the paper instance: cursors page through larger
// result spaces without diverging from Search.
TEST(CursorScaleTest, PageDrainMatchesSearchAt10x) {
  auto generated = GenerateCompanyDataset(CompanyGenOptions::AtScale(10));
  ASSERT_TRUE(generated.ok());
  GeneratedDataset dataset = std::move(generated).ValueOrDie();
  auto engine_or = KeywordSearchEngine::Create(
      dataset.db.get(), dataset.er_schema, dataset.mapping);
  ASSERT_TRUE(engine_or.ok());
  auto engine = std::move(engine_or).ValueOrDie();

  for (SearchMethod method : kAllMethods) {
    for (RankerKind ranker : kAllRankers) {
      SearchOptions options;
      options.method = method;
      options.ranker = ranker;
      options.max_rdb_edges = 3;
      options.top_k = 10;  // bounded: keeps 40 reference searches quick
      auto reference = engine->Search("smith xml", options);
      ASSERT_TRUE(reference.ok());
      std::vector<std::string> expected = Fingerprints(reference->hits);
      ASSERT_FALSE(expected.empty());

      for (size_t page_size : {1u, 3u, 7u}) {
        auto prepared =
            engine->Prepare("smith xml", QuerySpec::Unvalidated(options));
        ASSERT_TRUE(prepared.ok());
        std::vector<SearchHit> drained = DrainPages(*prepared, page_size);
        EXPECT_EQ(Fingerprints(drained), expected)
            << SearchMethodToString(method) << "/"
            << RankerKindToString(ranker) << " page=" << page_size;
      }
    }
  }
}

// The acceptance property: at 100x, fetching page 1 of a top-10 kStream
// query performs strictly fewer expansions than draining the space.
TEST(CursorScaleTest, StreamPageOneAt100xBeatsDraining) {
  auto generated = GenerateCompanyDataset(CompanyGenOptions::AtScale(100));
  ASSERT_TRUE(generated.ok());
  GeneratedDataset dataset = std::move(generated).ValueOrDie();
  auto engine_or = KeywordSearchEngine::Create(
      dataset.db.get(), dataset.er_schema, dataset.mapping);
  ASSERT_TRUE(engine_or.ok());
  auto engine = std::move(engine_or).ValueOrDie();

  SearchOptions options;
  options.method = SearchMethod::kStream;
  options.ranker = RankerKind::kCloseFirst;
  options.max_rdb_edges = 3;
  options.top_k = 0;
  auto drain = engine->Search("smith xml", options);
  ASSERT_TRUE(drain.ok());
  ASSERT_GT(drain->hits.size(), 10u);

  options.top_k = 10;
  auto one_shot = engine->Search("smith xml", options);
  ASSERT_TRUE(one_shot.ok());

  auto prepared = engine->Prepare("smith xml", options);
  ASSERT_TRUE(prepared.ok());
  auto cursor = prepared->Open();
  ASSERT_TRUE(cursor.ok());
  auto page1 = (*cursor)->Next(3);
  ASSERT_TRUE(page1.ok());
  ASSERT_EQ(page1->size(), 3u);
  size_t page1_expansions = (*cursor)->Stats().expansions;

  // Genuinely lazy: page 1 < settling all of top-10 < the full drain.
  EXPECT_LT(page1_expansions, one_shot->expansions);
  EXPECT_LT(one_shot->expansions, drain->expansions);
  EXPECT_LT(page1_expansions, drain->expansions);

  // The page itself is the true top-3 prefix.
  std::vector<std::string> top10 = Fingerprints(one_shot->hits);
  EXPECT_EQ(Fingerprints(*page1),
            std::vector<std::string>(top10.begin(), top10.begin() + 3));
}

}  // namespace
}  // namespace claks
