// Copyright 2026 The claks Authors.
//
// Storage-engine tests: snapshot save/load round-trip identity, the
// typed corruption taxonomy (StorageError), and the save preconditions.
// The fuzz-style corruption sweep lives in tests/storage_fuzz_test.cc;
// the full search-identity sweep across methods x rankers x shards is
// part of tests/differential_test.cc.

#include "storage/snapshot.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "datasets/company_gen.h"
#include "datasets/movies.h"
#include "service/search_service.h"
#include "storage/format.h"

namespace claks {
namespace {

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("claks_storage_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    auto dataset = GenerateCompanyDataset(CompanyGenOptions{});
    ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
    dataset_ = std::move(dataset).ValueOrDie();
    auto engine = KeywordSearchEngine::Create(
        dataset_.db.get(), dataset_.er_schema, dataset_.mapping);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(engine).ValueOrDie();
    engine_->Warmup();
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string SnapshotPath(const std::string& name) {
    return (dir_ / name).string();
  }

  /// Saves the member engine and returns the file's bytes.
  std::string SaveBytes(const std::string& name) {
    Status saved = engine_->SaveSnapshot(SnapshotPath(name));
    EXPECT_TRUE(saved.ok()) << saved.ToString();
    return ReadFile(SnapshotPath(name));
  }

  /// Expects a load of `bytes` to fail with exactly `expected`.
  void ExpectRejected(const std::string& bytes, StorageError expected) {
    std::string path = SnapshotPath("corrupt.claks");
    WriteFile(path, bytes);
    Result<LoadedEngine> loaded = KeywordSearchEngine::LoadSnapshot(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(StorageErrorOf(loaded.status()), expected)
        << loaded.status().ToString();
  }

  std::filesystem::path dir_;
  GeneratedDataset dataset_;
  std::unique_ptr<KeywordSearchEngine> engine_;
};

TEST_F(StorageTest, RoundTripPreservesEveryWarmedStructure) {
  std::string path = SnapshotPath("engine.claks");
  Status saved = engine_->SaveSnapshot(path);
  ASSERT_TRUE(saved.ok()) << saved.ToString();

  auto loaded = KeywordSearchEngine::LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const KeywordSearchEngine& restored = *loaded->engine;
  const Database& db = *dataset_.db;
  const Database& ldb = *loaded->db;

  // Tables: row-for-row, value-for-value, including tombstone state.
  ASSERT_EQ(ldb.num_tables(), db.num_tables());
  for (size_t t = 0; t < db.num_tables(); ++t) {
    const Table& a = db.table(t);
    const Table& b = ldb.table(t);
    EXPECT_EQ(a.schema().ToString(), b.schema().ToString());
    ASSERT_EQ(a.num_rows(), b.num_rows());
    EXPECT_EQ(a.num_deleted(), b.num_deleted());
    EXPECT_EQ(a.tombstone_count(), b.tombstone_count());
    for (size_t r = 0; r < a.num_rows(); ++r) {
      EXPECT_EQ(a.IsDeleted(r), b.IsDeleted(r));
      ASSERT_EQ(a.row(r).size(), b.row(r).size());
      for (size_t attr = 0; attr < a.row(r).size(); ++attr) {
        EXPECT_TRUE(a.row(r)[attr] == b.row(r)[attr])
            << "table " << t << " row " << r << " attr " << attr;
      }
    }
  }

  // The loaded engine is warm without a Warmup call: the join-index
  // cache was installed, not rebuilt.
  EXPECT_TRUE(restored.Warm());

  // Join indexes answer identically.
  for (size_t t = 0; t < db.num_tables(); ++t) {
    const auto& fks = db.table(t).schema().foreign_keys();
    for (uint32_t f = 0; f < fks.size(); ++f) {
      const FkJoinIndex& a = db.JoinIndex(t, f);
      const FkJoinIndex& b = ldb.JoinIndex(t, f);
      ASSERT_EQ(a.valid, b.valid);
      ASSERT_EQ(a.child_slots(), b.child_slots());
      for (size_t child = 0; child < a.child_slots(); ++child) {
        EXPECT_EQ(a.Parent(child), b.Parent(child));
      }
    }
  }

  // Graph: same shape, same adjacency.
  const DataGraph& ga = engine_->data_graph();
  const DataGraph& gb = restored.data_graph();
  ASSERT_EQ(ga.num_nodes(), gb.num_nodes());
  ASSERT_EQ(ga.num_edges(), gb.num_edges());
  ASSERT_EQ(ga.node_id_bound(), gb.node_id_bound());
  for (uint32_t node = 0; node < ga.node_id_bound(); ++node) {
    ASSERT_EQ(ga.IsNode(node), gb.IsNode(node));
    if (!ga.IsNode(node)) continue;
    Span<DataAdjacency> na = ga.Neighbors(node);
    Span<DataAdjacency> nb = gb.Neighbors(node);
    ASSERT_EQ(na.size(), nb.size());
    for (size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].edge_index, nb[i].edge_index);
      EXPECT_EQ(na[i].neighbor, nb[i].neighbor);
      EXPECT_EQ(na[i].along_fk, nb[i].along_fk);
    }
  }

  // Inverted index: same vocabulary, stats and postings.
  const InvertedIndex& ia = engine_->index();
  const InvertedIndex& ib = restored.index();
  EXPECT_EQ(ia.vocabulary_size(), ib.vocabulary_size());
  EXPECT_EQ(ia.stats().total_documents, ib.stats().total_documents);
  EXPECT_EQ(ia.stats().total_tokens, ib.stats().total_tokens);
  EXPECT_EQ(ia.stats().avg_document_length, ib.stats().avg_document_length);
  for (const char* probe_token :
       {"xml", "research", "smith", "database", "web"}) {
    const std::string probe(probe_token);
    const auto& pa = ia.LookupKeyword(probe);
    const auto& pb = ib.LookupKeyword(probe);
    ASSERT_EQ(pa.size(), pb.size()) << probe;
    EXPECT_EQ(ia.DocumentFrequency(probe), ib.DocumentFrequency(probe));
    for (size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i].tuple, pb[i].tuple);
      EXPECT_EQ(pa[i].attribute_index, pb[i].attribute_index);
      EXPECT_EQ(pa[i].term_frequency, pb[i].term_frequency);
    }
  }

  // Statistics and the ER model restore exactly.
  EXPECT_EQ(engine_->statistics().ToString(), restored.statistics().ToString());
  EXPECT_EQ(engine_->er_schema().entity_types().size(),
            restored.er_schema().entity_types().size());
  EXPECT_EQ(engine_->er_schema().relationships().size(),
            restored.er_schema().relationships().size());
  EXPECT_EQ(engine_->mapping().tables.size(), restored.mapping().tables.size());
  EXPECT_EQ(engine_->mapping().foreign_keys.size(),
            restored.mapping().foreign_keys.size());
}

TEST_F(StorageTest, RoundTripSearchIdentity) {
  std::string path = SnapshotPath("engine.claks");
  ASSERT_TRUE(engine_->SaveSnapshot(path).ok());
  auto loaded = KeywordSearchEngine::LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  for (SearchMethod method :
       {SearchMethod::kEnumerate, SearchMethod::kStream, SearchMethod::kBanks,
        SearchMethod::kMtjnt, SearchMethod::kDiscover}) {
    SearchOptions options;
    options.method = method;
    options.top_k = 10;
    auto a = engine_->Search("xml research", options);
    auto b = loaded->engine->Search("xml research", options);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->ToString(*dataset_.db), b->ToString(*loaded->db))
        << "method " << static_cast<int>(method);
    EXPECT_EQ(a->hits.size(), b->hits.size());
  }
}

TEST_F(StorageTest, MoviesDatasetRoundTrips) {
  auto dataset = GenerateMoviesDataset(MoviesGenOptions{});
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  auto engine = KeywordSearchEngine::Create(
      dataset->db.get(), dataset->er_schema, dataset->mapping);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  (*engine)->Warmup();
  std::string path = SnapshotPath("movies.claks");
  ASSERT_TRUE((*engine)->SaveSnapshot(path).ok());
  auto loaded = KeywordSearchEngine::LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  SearchOptions options;
  options.method = SearchMethod::kStream;
  options.top_k = 5;
  auto a = (*engine)->Search("action nolan", options);
  auto b = loaded->engine->Search("action nolan", options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->ToString(*dataset->db), b->ToString(*loaded->db));
}

TEST_F(StorageTest, SaveIsDeterministic) {
  std::string first = SaveBytes("a.claks");
  std::string second = SaveBytes("b.claks");
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.size() % kSnapshotPageSize, 0u);
}

TEST_F(StorageTest, SaveRequiresWarmEngine) {
  // Mutating the database behind the engine invalidates its warmed
  // caches; SaveSnapshot must refuse rather than serialize stale state.
  Table* employees = dataset_.db->FindMutableTable("EMPLOYEE");
  ASSERT_NE(employees, nullptr);
  const Table& t = *employees;
  Row copy = t.row(0);
  copy[0] = Value::String("e999");
  ASSERT_TRUE(employees->Insert(std::move(copy)).ok());
  Status saved = engine_->SaveSnapshot(SnapshotPath("stale.claks"));
  ASSERT_FALSE(saved.ok());
  EXPECT_TRUE(saved.IsInvalidArgument()) << saved.ToString();
}

TEST_F(StorageTest, RejectsMissingFile) {
  Result<LoadedEngine> loaded =
      KeywordSearchEngine::LoadSnapshot(SnapshotPath("nope.claks"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound());
  EXPECT_EQ(StorageErrorOf(loaded.status()), StorageError::kNone);
}

TEST_F(StorageTest, RejectsTruncatedFile) {
  std::string bytes = SaveBytes("engine.claks");
  // Chopping anywhere — header, table, or body — must be a clean
  // kTruncated rejection.
  for (size_t keep : {sizeof(StoredHeader) / 2, sizeof(StoredHeader) + 8,
                      bytes.size() / 2, bytes.size() - 1}) {
    ExpectRejected(bytes.substr(0, keep), StorageError::kTruncated);
  }
}

TEST_F(StorageTest, RejectsBadMagic) {
  std::string bytes = SaveBytes("engine.claks");
  std::string corrupt = bytes;
  corrupt[0] = 'X';
  ExpectRejected(corrupt, StorageError::kBadMagic);
}

TEST_F(StorageTest, RejectsBadVersion) {
  std::string bytes = SaveBytes("engine.claks");
  std::string corrupt = bytes;
  uint32_t future = kSnapshotFormatVersion + 1;
  // format_version sits right after magic[8] + endian u32.
  std::memcpy(&corrupt[12], &future, sizeof(future));
  ExpectRejected(corrupt, StorageError::kBadVersion);
}

TEST_F(StorageTest, RejectsForeignEndianness) {
  std::string bytes = SaveBytes("engine.claks");
  std::string corrupt = bytes;
  uint32_t swapped = 0x04030201;
  std::memcpy(&corrupt[8], &swapped, sizeof(swapped));
  ExpectRejected(corrupt, StorageError::kBadEndianness);
}

TEST_F(StorageTest, RejectsBodyBitFlip) {
  std::string bytes = SaveBytes("engine.claks");
  std::string corrupt = bytes;
  corrupt[bytes.size() - kSnapshotPageSize / 2] ^= 0x40;
  ExpectRejected(corrupt, StorageError::kChecksumMismatch);
}

TEST_F(StorageTest, RejectsHeaderChecksumFlip) {
  std::string bytes = SaveBytes("engine.claks");
  std::string corrupt = bytes;
  // Flip a bit inside the section table (covered by header_checksum).
  corrupt[sizeof(StoredHeader) + 4] ^= 0x01;
  ExpectRejected(corrupt, StorageError::kChecksumMismatch);
}

TEST_F(StorageTest, ServiceColdStartsFromSnapshot) {
  std::string path = SnapshotPath("service.claks");
  ASSERT_TRUE(engine_->SaveSnapshot(path).ok());

  auto service = SearchService::CreateFromSnapshot(path);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_EQ((*service)->snapshot()->version, 1u);

  SearchOptions options;
  options.method = SearchMethod::kStream;
  options.top_k = 10;
  auto cold = (*service)->SearchNow("xml research", options);
  auto warm = engine_->Search("xml research", options);
  ASSERT_TRUE(cold.ok() && warm.ok());
  EXPECT_EQ(cold->ToString((*service)->snapshot()->engine->database()),
            warm->ToString(*dataset_.db));
}

TEST_F(StorageTest, MutateDeltaDerivesOnTopOfMmapBase) {
  std::string path = SnapshotPath("service.claks");
  ASSERT_TRUE(engine_->SaveSnapshot(path).ok());
  auto service = SearchService::CreateFromSnapshot(path);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  // Mutate the cold-started service: the derive runs against frozen
  // bases that are zero-copy views into the mapped file.
  Status mutated = (*service)->Mutate([](Database* db) -> Status {
    Table* employees = db->FindMutableTable("EMPLOYEE");
    if (employees == nullptr) return Status::NotFound("EMPLOYEE");
    Row row = employees->row(0);
    row[0] = Value::String("e9001");
    row[1] = Value::String("SNAPSHOT MMAP PROBE");
    return employees->Insert(std::move(row)).status();
  });
  ASSERT_TRUE(mutated.ok()) << mutated.ToString();
  EXPECT_EQ((*service)->snapshot()->version, 2u);

  // The inserted row is searchable on the derived generation...
  SearchOptions options;
  options.top_k = 5;
  auto probe = (*service)->SearchNow("snapshot mmap", options);
  ASSERT_TRUE(probe.ok());
  EXPECT_FALSE(probe->matches.empty());

  // ...and matches a cold rebuild over an identical database.
  auto cold_db = (*service)->snapshot()->db->Clone();
  auto rebuilt = KeywordSearchEngine::Create(cold_db.get());
  ASSERT_TRUE(rebuilt.ok());
  auto derived_result = (*service)->SearchNow("xml research", options);
  auto rebuilt_result = (*rebuilt)->Search("xml research", options);
  ASSERT_TRUE(derived_result.ok() && rebuilt_result.ok());
  EXPECT_EQ(derived_result->ToString(*(*service)->snapshot()->db),
            rebuilt_result->ToString(*cold_db));
}

TEST_F(StorageTest, ServiceSaveSnapshotCompactsDerivedGenerations) {
  std::string path = SnapshotPath("service.claks");
  ASSERT_TRUE(engine_->SaveSnapshot(path).ok());
  auto service = SearchService::CreateFromSnapshot(path);
  ASSERT_TRUE(service.ok());

  // A small batch leaves derive overlays in place (kAuto threshold), so
  // SaveSnapshot must compact-then-save.
  Status mutated = (*service)->Mutate([](Database* db) -> Status {
    Table* employees = db->FindMutableTable("EMPLOYEE");
    Row row = employees->row(1);
    row[0] = Value::String("e9002");
    return employees->Insert(std::move(row)).status();
  });
  ASSERT_TRUE(mutated.ok()) << mutated.ToString();

  std::string resaved = SnapshotPath("resaved.claks");
  Status saved = (*service)->SaveSnapshot(resaved);
  ASSERT_TRUE(saved.ok()) << saved.ToString();

  // The re-saved file loads and answers like the live service.
  auto reloaded = SearchService::CreateFromSnapshot(resaved);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  SearchOptions options;
  options.top_k = 10;
  auto a = (*service)->SearchNow("xml research", options);
  auto b = (*reloaded)->SearchNow("xml research", options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->ToString(*(*service)->snapshot()->db),
            b->ToString(*(*reloaded)->snapshot()->db));
}

TEST_F(StorageTest, StorageErrorNamesRoundTrip) {
  for (StorageError code :
       {StorageError::kTruncated, StorageError::kBadMagic,
        StorageError::kBadVersion, StorageError::kBadEndianness,
        StorageError::kChecksumMismatch, StorageError::kMalformed}) {
    Status status = MakeStorageError(code, "probe");
    EXPECT_EQ(StorageErrorOf(status), code) << status.ToString();
  }
  EXPECT_EQ(StorageErrorOf(Status::OK()), StorageError::kNone);
  EXPECT_EQ(StorageErrorOf(Status::Internal("unrelated")),
            StorageError::kNone);
}

}  // namespace
}  // namespace claks
