// Copyright 2026 The claks Authors.

#include "relational/schema.h"

#include <gtest/gtest.h>

namespace claks {
namespace {

TableSchema MakeEmployeeSchema() {
  return TableSchema(
      "EMPLOYEE",
      {{"SSN", ValueType::kString, false, false},
       {"L_NAME", ValueType::kString, false, true},
       {"D_ID", ValueType::kString, false, false}},
      {"SSN"},
      {{"WORKS_FOR", {"D_ID"}, "DEPARTMENT", {"ID"}}});
}

TEST(TableSchemaTest, Accessors) {
  TableSchema schema = MakeEmployeeSchema();
  EXPECT_EQ(schema.name(), "EMPLOYEE");
  EXPECT_EQ(schema.num_attributes(), 3u);
  EXPECT_EQ(schema.primary_key(), std::vector<std::string>{"SSN"});
  ASSERT_EQ(schema.foreign_keys().size(), 1u);
  EXPECT_EQ(schema.foreign_keys()[0].referenced_table, "DEPARTMENT");
}

TEST(TableSchemaTest, AttributeIndex) {
  TableSchema schema = MakeEmployeeSchema();
  EXPECT_EQ(schema.AttributeIndex("SSN"), 0u);
  EXPECT_EQ(schema.AttributeIndex("D_ID"), 2u);
  EXPECT_FALSE(schema.AttributeIndex("NOPE").has_value());
  EXPECT_TRUE(schema.RequireAttributeIndex("NOPE").status().IsNotFound());
  EXPECT_EQ(*schema.RequireAttributeIndex("L_NAME"), 1u);
}

TEST(TableSchemaTest, KeyPredicates) {
  TableSchema schema = MakeEmployeeSchema();
  EXPECT_TRUE(schema.IsPrimaryKeyAttribute("SSN"));
  EXPECT_FALSE(schema.IsPrimaryKeyAttribute("D_ID"));
  EXPECT_TRUE(schema.IsForeignKeyAttribute("D_ID"));
  EXPECT_FALSE(schema.IsForeignKeyAttribute("SSN"));
}

TEST(TableSchemaTest, PrimaryKeyIndices) {
  TableSchema schema(
      "T", {{"A", ValueType::kString}, {"B", ValueType::kString}},
      {"B", "A"});
  EXPECT_EQ(schema.PrimaryKeyIndices(), (std::vector<size_t>{1, 0}));
}

TEST(TableSchemaTest, ValidatePasses) {
  EXPECT_TRUE(MakeEmployeeSchema().Validate().ok());
}

TEST(TableSchemaTest, ValidateRejectsDuplicateAttributes) {
  TableSchema schema("T", {{"A", ValueType::kString},
                           {"A", ValueType::kString}},
                     {"A"});
  EXPECT_TRUE(schema.Validate().IsInvalidArgument());
}

TEST(TableSchemaTest, ValidateRejectsMissingPk) {
  TableSchema schema("T", {{"A", ValueType::kString}}, {});
  EXPECT_TRUE(schema.Validate().IsInvalidArgument());
  TableSchema bad_pk("T", {{"A", ValueType::kString}}, {"B"});
  EXPECT_TRUE(bad_pk.Validate().IsInvalidArgument());
}

TEST(TableSchemaTest, ValidateRejectsBadForeignKey) {
  TableSchema arity("T", {{"A", ValueType::kString}}, {"A"},
                    {{"fk", {"A"}, "U", {"X", "Y"}}});
  EXPECT_TRUE(arity.Validate().IsInvalidArgument());
  TableSchema unknown("T", {{"A", ValueType::kString}}, {"A"},
                      {{"fk", {"Z"}, "U", {"X"}}});
  EXPECT_TRUE(unknown.Validate().IsInvalidArgument());
  TableSchema empty_fk("T", {{"A", ValueType::kString}}, {"A"},
                       {{"fk", {}, "U", {}}});
  EXPECT_TRUE(empty_fk.Validate().IsInvalidArgument());
}

TEST(TableSchemaTest, ValidateRejectsEmptyNames) {
  TableSchema unnamed("", {{"A", ValueType::kString}}, {"A"});
  EXPECT_TRUE(unnamed.Validate().IsInvalidArgument());
  TableSchema no_attrs("T", {}, {"A"});
  EXPECT_TRUE(no_attrs.Validate().IsInvalidArgument());
}

TEST(TableSchemaTest, ToStringMentionsEverything) {
  std::string s = MakeEmployeeSchema().ToString();
  EXPECT_NE(s.find("EMPLOYEE"), std::string::npos);
  EXPECT_NE(s.find("PRIMARY KEY (SSN)"), std::string::npos);
  EXPECT_NE(s.find("REFERENCES DEPARTMENT"), std::string::npos);
}

}  // namespace
}  // namespace claks
