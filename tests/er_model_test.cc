// Copyright 2026 The claks Authors.

#include "er/er_model.h"

#include <gtest/gtest.h>

#include <set>

#include "datasets/company_paper.h"

namespace claks {
namespace {

TEST(ERSchemaTest, AddAndLookupEntities) {
  ERSchema er = CompanyPaperErSchema();
  EXPECT_EQ(er.entity_types().size(), 4u);
  EXPECT_NE(er.FindEntity("EMPLOYEE"), nullptr);
  EXPECT_EQ(er.FindEntity("NOPE"), nullptr);
  EXPECT_EQ(er.EntityIndex("DEPARTMENT"), 0u);
}

TEST(ERSchemaTest, AddAndLookupRelationships) {
  ERSchema er = CompanyPaperErSchema();
  EXPECT_EQ(er.relationships().size(), 4u);
  const RelationshipType* works_on = er.FindRelationship("WORKS_ON");
  ASSERT_NE(works_on, nullptr);
  EXPECT_EQ(works_on->left_entity, "PROJECT");
  EXPECT_EQ(works_on->right_entity, "EMPLOYEE");
  EXPECT_EQ(works_on->cardinality, Cardinality::kNM);
  ASSERT_EQ(works_on->attributes.size(), 1u);
  EXPECT_EQ(works_on->attributes[0].name, "HOURS");
}

TEST(ERSchemaTest, RejectsDuplicatesAndUnknownEndpoints) {
  ERSchema er;
  EntityType a;
  a.name = "A";
  a.attributes = {{"ID", ValueType::kString, true, false}};
  ASSERT_TRUE(er.AddEntityType(a).ok());
  EXPECT_TRUE(er.AddEntityType(a).IsAlreadyExists());
  EXPECT_TRUE(er.AddRelationship("r", "A", "1:N", "MISSING").IsNotFound());
  EXPECT_TRUE(er.AddRelationship("r", "MISSING", "1:N", "A").IsNotFound());
  ASSERT_TRUE(er.AddRelationship("r", "A", "1:N", "A").ok());
  EXPECT_TRUE(er.AddRelationship("r", "A", "1:N", "A").IsAlreadyExists());
  EXPECT_TRUE(er.AddRelationship("bad", "A", "x:y", "A").IsParseError());
}

TEST(ERSchemaTest, KeyAttributeNames) {
  ERSchema er = CompanyPaperErSchema();
  EXPECT_EQ(er.FindEntity("EMPLOYEE")->KeyAttributeNames(),
            std::vector<std::string>{"SSN"});
}

TEST(ERSchemaTest, StepsFromEntity) {
  ERSchema er = CompanyPaperErSchema();
  // EMPLOYEE participates in WORKS_FOR (right), WORKS_ON (right),
  // DEPENDENTS_OF (left).
  auto steps = er.StepsFrom("EMPLOYEE");
  EXPECT_EQ(steps.size(), 3u);
  // DEPARTMENT participates in WORKS_FOR (left) and CONTROLS (left).
  EXPECT_EQ(er.StepsFrom("DEPARTMENT").size(), 2u);
}

TEST(ERSchemaTest, SelfRelationshipYieldsBothDirections) {
  ERSchema er;
  EntityType p;
  p.name = "PAPER";
  p.attributes = {{"ID", ValueType::kString, true, false}};
  ASSERT_TRUE(er.AddEntityType(p).ok());
  ASSERT_TRUE(er.AddRelationship("CITES", "PAPER", "N:M", "PAPER").ok());
  auto steps = er.StepsFrom("PAPER");
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_TRUE(steps[0].forward);
  EXPECT_FALSE(steps[1].forward);
}

TEST(ERSchemaTest, StepTargetAndCardinality) {
  ERSchema er = CompanyPaperErSchema();
  auto idx = er.RelationshipIndex("WORKS_FOR");
  ASSERT_TRUE(idx.has_value());
  ErStep forward{*idx, true};
  ErStep backward{*idx, false};
  EXPECT_EQ(er.StepTarget(forward), "EMPLOYEE");
  EXPECT_EQ(er.StepTarget(backward), "DEPARTMENT");
  EXPECT_EQ(er.StepCardinality(forward), Cardinality::kOneN);
  EXPECT_EQ(er.StepCardinality(backward), Cardinality::kNOne);
}

TEST(ErPathTest, EntitySequenceAndToString) {
  ERSchema er = CompanyPaperErSchema();
  auto paths = er.EnumeratePaths("DEPARTMENT", "DEPENDENT", 2);
  ASSERT_FALSE(paths.empty());
  const ErPath& path = paths[0];
  EXPECT_EQ(path.length(), 2u);
  EXPECT_EQ(path.EntitySequence(),
            (std::vector<std::string>{"DEPARTMENT", "EMPLOYEE",
                                      "DEPENDENT"}));
  EXPECT_EQ(path.EndEntity(), "DEPENDENT");
  EXPECT_EQ(path.ToString(), "department 1:N employee 1:N dependent");
}

TEST(ErPathTest, CardinalitySequence) {
  ERSchema er = CompanyPaperErSchema();
  auto paths = er.EnumeratePaths("PROJECT", "EMPLOYEE", 2);
  // Path 1 (length 1): project N:M employee (WORKS_ON).
  ASSERT_GE(paths.size(), 2u);
  EXPECT_EQ(paths[0].CardinalitySequence(),
            (std::vector<Cardinality>{Cardinality::kNM}));
  // Path 2 (length 2): project N:1 department 1:N employee.
  EXPECT_EQ(paths[1].CardinalitySequence(),
            (std::vector<Cardinality>{Cardinality::kNOne,
                                      Cardinality::kOneN}));
}

TEST(ERSchemaTest, EnumeratePathsOrderedByLength) {
  ERSchema er = CompanyPaperErSchema();
  auto paths = er.EnumeratePaths("DEPARTMENT", "EMPLOYEE", 3);
  ASSERT_GE(paths.size(), 2u);
  for (size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i - 1].length(), paths[i].length());
  }
  // Shortest is the immediate WORKS_FOR relationship.
  EXPECT_EQ(paths[0].length(), 1u);
}

TEST(ERSchemaTest, EnumeratePathsSimpleOnly) {
  ERSchema er = CompanyPaperErSchema();
  for (const ErPath& path : er.EnumeratePaths("DEPARTMENT", "EMPLOYEE", 4)) {
    auto seq = path.EntitySequence();
    std::set<std::string> unique(seq.begin(), seq.end());
    EXPECT_EQ(unique.size(), seq.size()) << path.ToString();
  }
}

TEST(ERSchemaTest, EnumeratePathsFrom) {
  ERSchema er = CompanyPaperErSchema();
  auto paths = er.EnumeratePathsFrom("DEPENDENT", 2);
  // DEPENDENT -> EMPLOYEE (1), then EMPLOYEE -> {DEPARTMENT, PROJECT} (2).
  EXPECT_EQ(paths.size(), 3u);
}

TEST(ERSchemaTest, ValidateChecksKeys) {
  ERSchema er;
  EntityType keyless;
  keyless.name = "K";
  keyless.attributes = {{"X", ValueType::kString, false, true}};
  ASSERT_TRUE(er.AddEntityType(keyless).ok());
  EXPECT_TRUE(er.Validate().IsInvalidArgument());
}

TEST(ERSchemaTest, ToStringListsEverything) {
  std::string s = CompanyPaperErSchema().ToString();
  EXPECT_NE(s.find("DEPARTMENT"), std::string::npos);
  EXPECT_NE(s.find("WORKS_ON"), std::string::npos);
  EXPECT_NE(s.find("N:M"), std::string::npos);
}

}  // namespace
}  // namespace claks
