// Copyright 2026 The claks Authors.

#include "graph/banks.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "datasets/company_paper.h"

namespace claks {
namespace {

class BanksTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    graph_ = std::make_unique<DataGraph>(dataset_.db.get());
  }

  uint32_t N(const std::string& name) {
    return graph_->NodeOf(PaperTuple(*dataset_.db, name));
  }

  // Keyword node sets for the paper query "Smith XML".
  std::vector<std::vector<uint32_t>> SmithXmlSets() {
    return {{N("e1"), N("e2")},
            {N("d1"), N("d2"), N("p1"), N("p2")}};
  }

  CompanyPaperDataset dataset_;
  std::unique_ptr<DataGraph> graph_;
};

TEST_F(BanksTest, FindsAnswersForPaperQuery) {
  auto answers = BanksBackwardSearch(*graph_, SmithXmlSets());
  ASSERT_FALSE(answers.empty());
  // Best answers have weight 1 (adjacent keyword tuples, root at either
  // end): d1-e1 and d2-e2.
  EXPECT_EQ(answers[0].weight, 1.0);
}

TEST_F(BanksTest, AnswersSortedByWeight) {
  auto answers = BanksBackwardSearch(*graph_, SmithXmlSets());
  for (size_t i = 1; i < answers.size(); ++i) {
    EXPECT_LE(answers[i - 1].weight, answers[i].weight);
  }
}

TEST_F(BanksTest, EveryAnswerTouchesEachKeywordSet) {
  auto sets = SmithXmlSets();
  auto answers = BanksBackwardSearch(*graph_, sets);
  for (const AnswerTree& answer : answers) {
    ASSERT_EQ(answer.keyword_nodes.size(), 2u);
    for (size_t k = 0; k < sets.size(); ++k) {
      EXPECT_TRUE(std::find(sets[k].begin(), sets[k].end(),
                            answer.keyword_nodes[k]) != sets[k].end());
    }
  }
}

TEST_F(BanksTest, TopKRespected) {
  BanksOptions options;
  options.top_k = 3;
  auto answers = BanksBackwardSearch(*graph_, SmithXmlSets(), options);
  EXPECT_LE(answers.size(), 3u);
}

TEST_F(BanksTest, AnswersDeduplicatedByEdgeSet) {
  auto answers = BanksBackwardSearch(*graph_, SmithXmlSets());
  std::set<std::vector<uint32_t>> edge_sets;
  for (const AnswerTree& answer : answers) {
    EXPECT_TRUE(edge_sets.insert(answer.edge_indices).second);
  }
}

TEST_F(BanksTest, EmptyKeywordSetYieldsNothing) {
  EXPECT_TRUE(
      BanksBackwardSearch(*graph_, {{N("e1")}, {}}).empty());
  EXPECT_TRUE(BanksBackwardSearch(*graph_, {}).empty());
}

TEST_F(BanksTest, SingleKeywordSetRootsAtMatches) {
  auto answers = BanksBackwardSearch(*graph_, {{N("e1")}});
  ASSERT_FALSE(answers.empty());
  EXPECT_EQ(answers[0].weight, 0.0);
  EXPECT_EQ(answers[0].root, N("e1"));
  EXPECT_TRUE(answers[0].edge_indices.empty());
}

TEST_F(BanksTest, MaxDistanceBoundsExpansion) {
  BanksOptions options;
  options.max_distance = 1;
  // e1 and t1 are 3 edges apart (e1-e3? no: e1-d1-e3-t1): beyond radius 1
  // from both sides, so no meeting root exists.
  auto answers =
      BanksBackwardSearch(*graph_, {{N("e1")}, {N("t1")}}, options);
  EXPECT_TRUE(answers.empty());
}

TEST_F(BanksTest, DegreePenalizedChangesWeights) {
  BanksOptions options;
  options.weight_model = BanksWeightModel::kDegreePenalized;
  auto answers = BanksBackwardSearch(*graph_, SmithXmlSets(), options);
  ASSERT_FALSE(answers.empty());
  // Weights now exceed plain hop counts.
  EXPECT_GT(answers[0].weight, 1.0);
}

TEST_F(BanksTest, ThreeKeywordQuery) {
  // Smith + XML + Alice: needs a tree touching e1/e2, xml tuples and t1.
  auto answers = BanksBackwardSearch(
      *graph_,
      {{N("e1"), N("e2")}, {N("d1"), N("d2"), N("p1"), N("p2")}, {N("t1")}});
  ASSERT_FALSE(answers.empty());
  for (const AnswerTree& answer : answers) {
    EXPECT_EQ(answer.keyword_nodes.size(), 3u);
  }
}

}  // namespace
}  // namespace claks
