// Copyright 2026 The claks Authors.
//
// Intra-query sharding invariants (core/shard.h). The partition: every
// node lands in exactly one shard and every FK edge is owned by exactly
// one side (the referencing endpoint's shard). The scatter-gather merge:
// per-shard streams recombine into exactly the unsharded emission order
// under any stop-bound schedule, paused shards keep their queues instead
// of draining, per-shard expansion counters sum to the reported total,
// and shards == 1 is bit-for-bit the pre-sharding engine. The randomized
// end-to-end sweep lives in tests/differential_test.cc; these are the
// targeted property tests behind it.

#include "core/shard.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "common/thread_pool.h"
#include "core/cursor.h"
#include "core/engine.h"
#include "core/topk.h"
#include "datasets/company_gen.h"
#include "datasets/company_paper.h"
#include "graph/data_graph.h"

namespace claks {
namespace {

// ---------------------------------------------------------------------------
// Partition invariants
// ---------------------------------------------------------------------------

class ShardPartitionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto paper = BuildCompanyPaperDataset();
    ASSERT_TRUE(paper.ok());
    paper_ = std::move(paper).ValueOrDie();
    auto paper_engine = KeywordSearchEngine::Create(
        paper_.db.get(), paper_.er_schema, paper_.mapping);
    ASSERT_TRUE(paper_engine.ok());
    paper_engine_ = std::move(paper_engine).ValueOrDie();

    auto gen = GenerateCompanyDataset(CompanyGenOptions::AtScale(2));
    ASSERT_TRUE(gen.ok());
    gen_ = std::move(gen).ValueOrDie();
    auto gen_engine = KeywordSearchEngine::Create(gen_.db.get(),
                                                  gen_.er_schema,
                                                  gen_.mapping);
    ASSERT_TRUE(gen_engine.ok());
    gen_engine_ = std::move(gen_engine).ValueOrDie();
  }

  std::vector<const DataGraph*> Graphs() const {
    return {&paper_engine_->data_graph(), &gen_engine_->data_graph()};
  }

  CompanyPaperDataset paper_;
  GeneratedDataset gen_;
  std::unique_ptr<KeywordSearchEngine> paper_engine_;
  std::unique_ptr<KeywordSearchEngine> gen_engine_;
};

TEST_F(ShardPartitionTest, CoversEveryNodeExactlyOnce) {
  for (const DataGraph* graph : Graphs()) {
    for (size_t shards : {1u, 2u, 4u, 7u}) {
      ShardPartition partition = MakeShardPartition(*graph, shards);
      ASSERT_EQ(partition.num_shards, shards);
      // The lookup table covers the whole slack-gapped id space; only
      // ids that address real tuples count toward the balance stats.
      ASSERT_EQ(partition.shard_of_node.size(), graph->node_id_bound());
      std::vector<size_t> recount(shards, 0);
      for (uint32_t node = 0; node < graph->node_id_bound(); ++node) {
        uint32_t shard = partition.shard_of_node[node];
        ASSERT_LT(shard, shards) << "node " << node;
        // The materialized partition is the hash, node by node.
        EXPECT_EQ(shard, ShardOfNode(node, shards)) << "node " << node;
        if (graph->IsNode(node)) ++recount[shard];
      }
      ASSERT_EQ(partition.node_counts.size(), shards);
      size_t total = 0;
      for (size_t s = 0; s < shards; ++s) {
        EXPECT_EQ(partition.node_counts[s], recount[s]) << "shard " << s;
        total += partition.node_counts[s];
      }
      // Exactly once: the per-shard counts tile the node set.
      EXPECT_EQ(total, graph->num_nodes());
    }
  }
}

TEST_F(ShardPartitionTest, EdgeOwnedByExactlyTheReferencingSide) {
  for (const DataGraph* graph : Graphs()) {
    for (size_t shards : {2u, 4u}) {
      ShardPartition partition = MakeShardPartition(*graph, shards);
      std::vector<size_t> recount(shards, 0);
      size_t edges_seen = 0;
      for (uint32_t e : graph->EdgeIds()) {
        const DataEdge& edge = graph->edge(e);
        ++edges_seen;
        uint32_t from_shard =
            ShardOfNode(graph->NodeOf(edge.from), shards);
        uint32_t to_shard = ShardOfNode(graph->NodeOf(edge.to), shards);
        uint32_t owner = ShardOfEdge(*graph, e, shards);
        // The owner is the referencing (`from`) endpoint's shard — in
        // particular one of the two endpoint shards, so a cross-shard FK
        // edge is seen by exactly one side.
        EXPECT_EQ(owner, from_shard) << "edge " << e;
        EXPECT_TRUE(owner == from_shard || owner == to_shard);
        ++recount[owner];
      }
      size_t total = 0;
      for (size_t s = 0; s < shards; ++s) {
        EXPECT_EQ(partition.edge_counts[s], recount[s]) << "shard " << s;
        total += partition.edge_counts[s];
      }
      EXPECT_EQ(edges_seen, graph->num_edges());
      EXPECT_EQ(total, graph->num_edges());
    }
  }
}

TEST_F(ShardPartitionTest, HashIsDeterministicAndSpreadsShards) {
  for (uint32_t node : {0u, 1u, 17u, 1000u, 0xffffffffu}) {
    for (size_t shards : {1u, 2u, 4u, 7u}) {
      EXPECT_EQ(ShardOfNode(node, shards), ShardOfNode(node, shards));
      EXPECT_LT(ShardOfNode(node, shards), shards);
    }
    EXPECT_EQ(ShardOfNode(node, 1), 0u);
  }
  // Dense table-major ids must not collapse into few shards: on the
  // scaled dataset every shard of a 4-way split gets some nodes.
  ShardPartition partition =
      MakeShardPartition(gen_engine_->data_graph(), 4);
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_GT(partition.node_counts[s], 0u) << "shard " << s;
  }
}

TEST(EffectiveShardsTest, ZeroBehavesLikeOne) {
  EXPECT_EQ(EffectiveShards(0), 1u);
  EXPECT_EQ(EffectiveShards(1), 1u);
  EXPECT_EQ(EffectiveShards(4), 4u);
}

TEST(RankSeedSetsTest, AssignsContiguousRanksSideAFirst) {
  // Duplicates dedup to their first occurrence — the numbering
  // ConnectionStream::Bidirectional produces internally.
  RankedSeedSets sets = RankSeedSets({5, 7, 5, 9}, {7, 2, 2});
  ASSERT_EQ(sets.side_a.size(), 3u);
  ASSERT_EQ(sets.side_b.size(), 2u);
  EXPECT_EQ(sets.side_a[0].node, 5u);
  EXPECT_EQ(sets.side_a[0].rank, 0u);
  EXPECT_EQ(sets.side_a[1].node, 7u);
  EXPECT_EQ(sets.side_a[1].rank, 1u);
  EXPECT_EQ(sets.side_a[2].node, 9u);
  EXPECT_EQ(sets.side_a[2].rank, 2u);
  // A node appearing on both sides keeps independent per-lane seeds,
  // exactly like the unsharded two-lane stream.
  EXPECT_EQ(sets.side_b[0].node, 7u);
  EXPECT_EQ(sets.side_b[0].rank, 3u);
  EXPECT_EQ(sets.side_b[1].node, 2u);
  EXPECT_EQ(sets.side_b[1].rank, 4u);
}

// ---------------------------------------------------------------------------
// Scatter-gather merge vs the unsharded stream
// ---------------------------------------------------------------------------

/// Comparable form of one emission: merge coordinates plus the exact path
/// (start node and edge-index/neighbor step sequence).
using FlatEmission =
    std::tuple<size_t, uint64_t, uint32_t, std::vector<uint32_t>>;

FlatEmission Flatten(const KeyedPath& keyed) {
  std::vector<uint32_t> steps;
  for (const DataAdjacency& step : keyed.path.steps) {
    steps.push_back(step.edge_index);
    steps.push_back(step.neighbor);
  }
  return {keyed.length, keyed.seed_rank, keyed.path.start,
          std::move(steps)};
}

class ShardedStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    auto engine = KeywordSearchEngine::Create(
        dataset_.db.get(), dataset_.er_schema, dataset_.mapping);
    ASSERT_TRUE(engine.ok());
    engine_ = std::move(engine).ValueOrDie();

    // Seed sets of the "Smith XML" query, exactly as the streaming
    // cursor derives them.
    auto prepared = engine_->Prepare("Smith XML", SearchOptions{});
    ASSERT_TRUE(prepared.ok());
    const DataGraph& graph = engine_->data_graph();
    for (size_t keyword = 0; keyword < 2; ++keyword) {
      std::vector<uint32_t>* side = keyword == 0 ? &side_a_ : &side_b_;
      for (const TupleMatch& m :
           prepared->matches()[keyword].matches) {
        side->push_back(graph.NodeOf(m.tuple));
      }
      ASSERT_FALSE(side->empty());
    }
  }

  static constexpr size_t kMaxEdges = 3;

  /// The unsharded reference sequence: full keyed drain.
  std::vector<FlatEmission> UnshardedDrain() {
    ConnectionStream stream = ConnectionStream::Bidirectional(
        &engine_->data_graph(), side_a_, side_b_, kMaxEdges);
    std::vector<FlatEmission> out;
    while (auto keyed = stream.NextKeyedPath()) {
      out.push_back(Flatten(*keyed));
    }
    unsharded_expansions_ = stream.expansions();
    return out;
  }

  ShardedStreamSource MakeSource(size_t shards, ThreadPool* pool) {
    return ShardedStreamSource(
        &engine_->data_graph(), side_a_, side_b_, kMaxEdges, shards, pool,
        [](const NodePath& path) {
          SearchHit hit;
          hit.tree = CanonicalTree(path);
          return Result<SearchHit>(std::move(hit));
        });
  }

  CompanyPaperDataset dataset_;
  std::unique_ptr<KeywordSearchEngine> engine_;
  std::vector<uint32_t> side_a_;
  std::vector<uint32_t> side_b_;
  size_t unsharded_expansions_ = 0;
};

TEST_F(ShardedStreamTest, MergedDrainEqualsUnshardedDrain) {
  std::vector<FlatEmission> reference = UnshardedDrain();
  ASSERT_FALSE(reference.empty());
  ThreadPool pool(4, 64);
  for (size_t shards : {1u, 2u, 3u, 4u, 8u}) {
    ShardedStreamSource source = MakeSource(shards, &pool);
    std::vector<FlatEmission> merged;
    while (true) {
      auto emission = source.Next(ConnectionStream::kNoStopLength);
      ASSERT_TRUE(emission.ok()) << "shards=" << shards;
      if (!emission->has_value()) break;
      merged.push_back(Flatten((*emission)->keyed));
    }
    // Emission by emission: same paths, same order, same coordinates.
    EXPECT_EQ(merged, reference) << "shards=" << shards;
    EXPECT_FALSE(source.PendingLength().has_value());
  }
}

TEST_F(ShardedStreamTest, StopScheduleInvariance) {
  std::vector<FlatEmission> reference = UnshardedDrain();
  ThreadPool pool(4, 64);
  for (size_t shards : {2u, 4u}) {
    ShardedStreamSource source = MakeSource(shards, &pool);
    std::vector<FlatEmission> merged;
    // Raise the stop bound one length at a time; each rung pulls to a
    // pause, never a drain. The final rung lifts the bound entirely.
    for (size_t stop = 0; stop <= kMaxEdges; ++stop) {
      while (true) {
        auto emission = source.Next(stop);
        ASSERT_TRUE(emission.ok());
        if (!emission->has_value()) break;
        // Everything delivered under a bound beats the bound.
        EXPECT_LT((*emission)->keyed.length, stop);
        merged.push_back(Flatten((*emission)->keyed));
      }
      // Paused, not drained: the global pause fires no earlier than any
      // shard's local bound permits — every future emission is at least
      // `stop` long, so nothing below the bound was withheld.
      if (auto pending = source.PendingLength()) {
        EXPECT_GE(*pending, stop);
      }
    }
    while (true) {
      auto emission = source.Next(ConnectionStream::kNoStopLength);
      ASSERT_TRUE(emission.ok());
      if (!emission->has_value()) break;
      merged.push_back(Flatten((*emission)->keyed));
    }
    // The chunked schedule delivers exactly the one-shot drain.
    EXPECT_EQ(merged, reference) << "shards=" << shards;
  }
}

TEST_F(ShardedStreamTest, ExpansionCountersSumInShardOrder) {
  UnshardedDrain();  // sets unsharded_expansions_
  ThreadPool pool(4, 64);
  for (size_t shards : {2u, 4u}) {
    ShardedStreamSource source = MakeSource(shards, &pool);
    while (true) {
      auto emission = source.Next(ConnectionStream::kNoStopLength);
      ASSERT_TRUE(emission.ok());
      if (!emission->has_value()) break;
    }
    std::vector<size_t> per_shard = source.ShardExpansions();
    ASSERT_EQ(per_shard.size(), shards);
    size_t sum = 0;
    for (size_t count : per_shard) sum += count;
    EXPECT_EQ(source.TotalExpansions(), sum);
    // Each shard explores its own seeds' frontier; dedup only trims
    // emissions, never expansions, so the union does at least the
    // unsharded stream's work.
    EXPECT_GE(sum, unsharded_expansions_) << "shards=" << shards;
  }
}

// ---------------------------------------------------------------------------
// Engine-level sharding
// ---------------------------------------------------------------------------

std::vector<std::vector<double>> Keys(const SearchResult& result,
                                      RankerKind kind) {
  auto ranker = MakeRanker(kind);
  std::vector<std::vector<double>> keys;
  for (const SearchHit& hit : result.hits) {
    keys.push_back(ranker->SortKey(hit.ToRankInput()));
  }
  return keys;
}

std::vector<std::string> Rendered(const SearchResult& result) {
  std::vector<std::string> out;
  for (const SearchHit& hit : result.hits) out.push_back(hit.rendered);
  return out;
}

class ShardedSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    auto engine = KeywordSearchEngine::Create(
        dataset_.db.get(), dataset_.er_schema, dataset_.mapping);
    ASSERT_TRUE(engine.ok());
    engine_ = std::move(engine).ValueOrDie();
  }

  SearchResult Run(SearchMethod method, RankerKind ranker, size_t top_k,
                   size_t shards) {
    SearchOptions options;
    options.method = method;
    options.ranker = ranker;
    options.top_k = top_k;
    options.max_rdb_edges = 3;
    options.shards = shards;
    auto result = engine_->Search("Smith XML", options);
    EXPECT_TRUE(result.ok());
    return std::move(result).ValueOrDie();
  }

  CompanyPaperDataset dataset_;
  std::unique_ptr<KeywordSearchEngine> engine_;
};

TEST_F(ShardedSearchTest, StreamHitsIdenticalAcrossShardCounts) {
  for (RankerKind ranker :
       {RankerKind::kRdbLength, RankerKind::kCloseFirst,
        RankerKind::kCombined /* non-monotone: full-drain fallback */}) {
    SearchResult unsharded =
        Run(SearchMethod::kStream, ranker, /*top_k=*/5, /*shards=*/1);
    EXPECT_TRUE(unsharded.shard_expansions.empty());
    for (size_t shards : {2u, 4u}) {
      SearchResult sharded =
          Run(SearchMethod::kStream, ranker, /*top_k=*/5, shards);
      EXPECT_EQ(Rendered(sharded), Rendered(unsharded))
          << RankerKindToString(ranker) << " shards=" << shards;
      EXPECT_EQ(Keys(sharded, ranker), Keys(unsharded, ranker))
          << RankerKindToString(ranker) << " shards=" << shards;
      ASSERT_EQ(sharded.shard_expansions.size(), shards);
      size_t sum = 0;
      for (size_t count : sharded.shard_expansions) sum += count;
      EXPECT_EQ(sharded.expansions, sum);
    }
  }
}

TEST_F(ShardedSearchTest, MaterializedMethodsIdenticalUnderShards) {
  for (SearchMethod method :
       {SearchMethod::kEnumerate, SearchMethod::kMtjnt,
        SearchMethod::kDiscover, SearchMethod::kBanks}) {
    SearchResult unsharded =
        Run(method, RankerKind::kCloseFirst, /*top_k=*/0, /*shards=*/1);
    SearchResult sharded =
        Run(method, RankerKind::kCloseFirst, /*top_k=*/0, /*shards=*/4);
    EXPECT_EQ(Rendered(sharded), Rendered(unsharded))
        << SearchMethodToString(method);
    EXPECT_EQ(Keys(sharded, RankerKind::kCloseFirst),
              Keys(unsharded, RankerKind::kCloseFirst))
        << SearchMethodToString(method);
    EXPECT_EQ(sharded.expansions, unsharded.expansions)
        << SearchMethodToString(method);
  }
}

TEST(ShardedScaleTest, SettledShardsArePausedNotDrained) {
  auto dataset = GenerateCompanyDataset(CompanyGenOptions::AtScale(10));
  ASSERT_TRUE(dataset.ok());
  auto engine = KeywordSearchEngine::Create(
      dataset->db.get(), dataset->er_schema, dataset->mapping);
  ASSERT_TRUE(engine.ok());

  SearchOptions options;
  options.method = SearchMethod::kStream;
  options.ranker = RankerKind::kRdbLength;
  options.max_rdb_edges = 4;
  options.shards = 4;

  options.top_k = 3;
  auto settled = (*engine)->Search("xml databases", options);
  ASSERT_TRUE(settled.ok());
  options.top_k = 0;  // legacy facade: full drain
  auto drained = (*engine)->Search("xml databases", options);
  ASSERT_TRUE(drained.ok());

  ASSERT_EQ(settled->shard_expansions.size(), 4u);
  ASSERT_EQ(drained->shard_expansions.size(), 4u);
  for (size_t s = 0; s < 4; ++s) {
    // The settle bound pauses a shard mid-queue; it never makes a shard
    // do *more* work than draining it would.
    EXPECT_LE(settled->shard_expansions[s], drained->shard_expansions[s])
        << "shard " << s;
  }
  EXPECT_LT(settled->expansions, drained->expansions);
  EXPECT_EQ(settled->hits.size(), 3u);
}

}  // namespace
}  // namespace claks
