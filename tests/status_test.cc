// Copyright 2026 The claks Authors.

#include "common/status.h"

#include <gtest/gtest.h>

#include "common/macros.h"
#include "common/result.h"

namespace claks {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing table");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "missing table");
  EXPECT_EQ(st.ToString(), "NotFound: missing table");
}

TEST(StatusTest, AllFactories) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IntegrityViolation("x").IsIntegrityViolation());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopyIsCheapAndEqualContent) {
  Status a = Status::ParseError("bad csv");
  Status b = a;
  EXPECT_EQ(b.message(), "bad csv");
  EXPECT_TRUE(b.IsParseError());
}

TEST(StatusTest, WithContextPrefixesMessage) {
  Status st = Status::ParseError("bad field").WithContext("record 7");
  EXPECT_EQ(st.message(), "record 7: bad field");
  EXPECT_TRUE(st.IsParseError());
  // No-op on OK.
  EXPECT_TRUE(Status::OK().WithContext("ctx").ok());
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIntegrityViolation),
               "IntegrityViolation");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  CLAKS_ASSIGN_OR_RETURN(int h, Half(x));
  CLAKS_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());  // 6/2=3 is odd
  EXPECT_TRUE(Quarter(5).status().IsInvalidArgument());
}

Status CheckEven(int x) {
  CLAKS_RETURN_NOT_OK(Half(x).status());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(CheckEven(4).ok());
  EXPECT_FALSE(CheckEven(3).ok());
}

}  // namespace
}  // namespace claks
