// Copyright 2026 The claks Authors.

#include "graph/schema_graph.h"

#include <gtest/gtest.h>

#include <memory>

#include "datasets/company_paper.h"

namespace claks {
namespace {

class SchemaGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = BuildCompanyPaperDataset();
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).ValueOrDie();
    graph_ = std::make_unique<SchemaGraph>(dataset_.db.get());
  }

  uint32_t T(const std::string& name) {
    return *dataset_.db->TableIndex(name);
  }

  CompanyPaperDataset dataset_;
  std::unique_ptr<SchemaGraph> graph_;
};

TEST_F(SchemaGraphTest, OneEdgePerForeignKey) {
  // PROJECT->DEPARTMENT, WORKS_FOR->EMPLOYEE, WORKS_FOR->PROJECT,
  // EMPLOYEE->DEPARTMENT, DEPENDENT->EMPLOYEE.
  EXPECT_EQ(graph_->edges().size(), 5u);
  EXPECT_EQ(graph_->num_tables(), 5u);
}

TEST_F(SchemaGraphTest, NeighborsBothDirections) {
  // DEPARTMENT is referenced by PROJECT and EMPLOYEE: two incoming.
  auto dept = graph_->Neighbors(T("DEPARTMENT"));
  EXPECT_EQ(dept.size(), 2u);
  for (const SchemaAdjacency& adj : dept) {
    EXPECT_FALSE(adj.along_fk);  // DEPARTMENT owns no FK
  }
  // WORKS_FOR owns two FKs.
  auto wf = graph_->Neighbors(T("WORKS_FOR"));
  EXPECT_EQ(wf.size(), 2u);
  for (const SchemaAdjacency& adj : wf) {
    EXPECT_TRUE(adj.along_fk);
  }
}

TEST_F(SchemaGraphTest, Distances) {
  EXPECT_EQ(graph_->Distance(T("DEPARTMENT"), T("DEPARTMENT")), 0u);
  EXPECT_EQ(graph_->Distance(T("DEPARTMENT"), T("EMPLOYEE")), 1u);
  EXPECT_EQ(graph_->Distance(T("DEPARTMENT"), T("DEPENDENT")), 2u);
  // DEPENDENT to PROJECT: DEPENDENT-EMPLOYEE-WORKS_FOR-PROJECT = 3.
  EXPECT_EQ(graph_->Distance(T("DEPENDENT"), T("PROJECT")), 3u);
}

TEST_F(SchemaGraphTest, DisconnectedDistanceIsMax) {
  Database db;
  ASSERT_TRUE(
      db.AddTable(TableSchema("X", {{"ID", ValueType::kString}}, {"ID"}))
          .ok());
  ASSERT_TRUE(
      db.AddTable(TableSchema("Y", {{"ID", ValueType::kString}}, {"ID"}))
          .ok());
  SchemaGraph g(&db);
  EXPECT_EQ(g.Distance(0, 1), SIZE_MAX);
}

TEST_F(SchemaGraphTest, EnumerateTablePathsShortestFirst) {
  auto paths = graph_->EnumerateTablePaths(T("DEPARTMENT"), T("EMPLOYEE"),
                                           /*max_edges=*/3);
  // Direct (1 edge) and via PROJECT+WORKS_FOR (3 edges).
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].size(), 1u);
  EXPECT_EQ(paths[1].size(), 3u);
}

TEST_F(SchemaGraphTest, EnumerateTablePathsRespectsBound) {
  auto paths = graph_->EnumerateTablePaths(T("DEPARTMENT"), T("EMPLOYEE"),
                                           /*max_edges=*/1);
  EXPECT_EQ(paths.size(), 1u);
}

TEST_F(SchemaGraphTest, ToStringListsEdges) {
  std::string s = graph_->ToString();
  EXPECT_NE(s.find("EMPLOYEE -> DEPARTMENT"), std::string::npos);
  EXPECT_NE(s.find("WORKS_FOR -> PROJECT"), std::string::npos);
}

}  // namespace
}  // namespace claks
